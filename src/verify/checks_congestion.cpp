// VF019 — the windowed conservation law. The windowed ingestion sink
// (metrics/windowed.hpp) promises that slicing one event pass into W
// wall-clock windows loses nothing: every byte and packet of the
// aggregate matrix lands in exactly one window. This checker audits
// that promise at both levels — the matrices themselves (integer, so
// equality is exact) and the link loads they induce (where the
// weighted/ECMP kernel is floating-point, conservation is checked
// through the summed matrix, which replays the identical operation
// sequence and must therefore match bit for bit).
#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "netloc/mapping/mapping.hpp"
#include "netloc/metrics/traffic_matrix.hpp"
#include "netloc/metrics/utilization.hpp"
#include "netloc/topology/route_plan.hpp"
#include "netloc/verify/checks.hpp"

#include "internal.hpp"

namespace netloc::verify {

namespace {

using CellRow = std::tuple<Rank, Rank, metrics::TrafficCell>;

std::vector<CellRow> collect_cells(const metrics::TrafficMatrix& matrix) {
  std::vector<CellRow> cells;
  cells.reserve(matrix.nonzero_pairs());
  matrix.for_each_nonzero(
      [&](Rank src, Rank dst, const metrics::TrafficCell& cell) {
        cells.emplace_back(src, dst, cell);
      });
  return cells;
}

}  // namespace

std::size_t check_window_conservation(
    std::span<const metrics::TrafficMatrix> windows,
    const metrics::TrafficMatrix& aggregate, const topology::RoutePlan* plan,
    const mapping::Mapping* mapping, const std::string& source,
    lint::LintReport& report) {
  Emitter emit(report, source);
  std::size_t checks = 0;

  const int n = aggregate.num_ranks();
  for (std::size_t w = 0; w < windows.size(); ++w) {
    ++checks;
    if (windows[w].num_ranks() != n) {
      emit.emit("VF019", static_cast<long>(w),
                "window " + std::to_string(w) + " spans " +
                    std::to_string(windows[w].num_ranks()) +
                    " ranks but the aggregate spans " + std::to_string(n),
                "the windowed sink and the aggregate sink must see the same "
                "event pass");
      return checks;  // Cell-level comparison would be meaningless.
    }
  }

  // (a) Matrix conservation: the integer cell-wise sum of the windows
  // must reproduce the aggregate exactly. Accumulated through the same
  // strip budget the traffic pass uses, so the rebuild exercises the
  // tiled open phase too.
  const std::size_t strip_budget =
      static_cast<std::size_t>(n) * sizeof(metrics::TrafficCell) * 8;
  metrics::TrafficMatrix summed(n, strip_budget);
  for (const auto& window : windows) {
    window.for_each_nonzero(
        [&](Rank src, Rank dst, const metrics::TrafficCell& cell) {
          summed.add_cell(src, dst, cell.bytes, cell.packets);
        });
  }
  summed.freeze();

  ++checks;
  if (summed.total_bytes() != aggregate.total_bytes() ||
      summed.total_packets() != aggregate.total_packets() ||
      summed.nonzero_pairs() != aggregate.nonzero_pairs()) {
    emit.emit("VF019", -1,
              "summed windows carry " + std::to_string(summed.total_bytes()) +
                  " bytes / " + std::to_string(summed.total_packets()) +
                  " packets over " + std::to_string(summed.nonzero_pairs()) +
                  " pairs; the aggregate carries " +
                  std::to_string(aggregate.total_bytes()) + " / " +
                  std::to_string(aggregate.total_packets()) + " over " +
                  std::to_string(aggregate.nonzero_pairs()));
  }
  const auto summed_cells = collect_cells(summed);
  const auto aggregate_cells = collect_cells(aggregate);
  checks += std::max(summed_cells.size(), aggregate_cells.size());
  const std::size_t common =
      std::min(summed_cells.size(), aggregate_cells.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (summed_cells[i] == aggregate_cells[i]) continue;
    const auto& [src, dst, cell] = aggregate_cells[i];
    const auto& [wsrc, wdst, wcell] = summed_cells[i];
    emit.emit("VF019", static_cast<long>(i),
              "cell mismatch at stored index " + std::to_string(i) +
                  ": aggregate (" + std::to_string(src) + " -> " +
                  std::to_string(dst) + ", " + std::to_string(cell.bytes) +
                  " B / " + std::to_string(cell.packets) +
                  " pkt) vs summed windows (" + std::to_string(wsrc) +
                  " -> " + std::to_string(wdst) + ", " +
                  std::to_string(wcell.bytes) + " B / " +
                  std::to_string(wcell.packets) + " pkt)");
  }

  // (b)/(c) Link-load conservation over the plan. Single-path loads
  // are integers, so the per-window loads are summed directly; the
  // weighted/ECMP kernel is floating-point, where summing per-window
  // load vectors would reassociate — there the summed matrix (already
  // proven cell-identical above) replays the aggregate kernel's exact
  // operation sequence and must match bit for bit.
  if (plan != nullptr && mapping != nullptr && plan->num_links() > 0) {
    const auto links = static_cast<std::size_t>(plan->num_links());
    checks += links;
    if (plan->single_path()) {
      std::vector<Bytes> agg_loads(links, 0);
      std::vector<Bytes> window_loads(links, 0);
      metrics::accumulate_link_loads(aggregate, *plan, *mapping, agg_loads);
      for (const auto& window : windows) {
        metrics::accumulate_link_loads(window, *plan, *mapping, window_loads);
      }
      for (std::size_t l = 0; l < links; ++l) {
        if (window_loads[l] == agg_loads[l]) continue;
        emit.emit("VF019", static_cast<long>(l),
                  "link " + std::to_string(l) + " carries " +
                      std::to_string(agg_loads[l]) +
                      " load in the aggregate but " +
                      std::to_string(window_loads[l]) +
                      " summed over the windows");
      }
    } else {
      std::vector<double> agg_loads(links, 0.0);
      std::vector<double> summed_loads(links, 0.0);
      metrics::accumulate_link_loads(aggregate, *plan, *mapping,
                                     std::span<double>(agg_loads));
      metrics::accumulate_link_loads(summed, *plan, *mapping,
                                     std::span<double>(summed_loads));
      for (std::size_t l = 0; l < links; ++l) {
        if (summed_loads[l] == agg_loads[l]) continue;
        emit.emit("VF019", static_cast<long>(l),
                  "link " + std::to_string(l) + " carries " +
                      std::to_string(agg_loads[l]) +
                      " weighted load in the aggregate but " +
                      std::to_string(summed_loads[l]) +
                      " from the summed windows (bit-exact match expected)");
      }
    }
  }

  return checks;
}

}  // namespace netloc::verify
