// The built-in verify passes, the pass manager and the report writers.
#include <algorithm>
#include <chrono>
#include <optional>
#include <ostream>
#include <string>

#include "netloc/common/error.hpp"
#include "netloc/engine/task_graph.hpp"
#include "netloc/lint/report.hpp"
#include "netloc/metrics/windowed.hpp"
#include "netloc/verify/checks.hpp"
#include "netloc/verify/pass.hpp"

namespace netloc::verify {

namespace {

/// Pair sample for the route-level passes: the distance-table window
/// when one exists (that is where table/route skew can hide), else the
/// node space capped so tableless plans stay cheap.
std::vector<topology::NodePair> route_sample(const VerifyContext& ctx) {
  const auto& plan = *ctx.plan;
  const int universe =
      plan.window() > 1 ? plan.window() : std::min(plan.num_nodes(), 1024);
  return sample_pairs(universe, ctx.max_pairs);
}

class GraphPass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "graph"; }
  [[nodiscard]] std::string_view summary() const override {
    return "network-graph structural audit against its topology";
  }
  [[nodiscard]] CostTier cost() const override { return CostTier::Cheap; }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (ctx.topology == nullptr) return "no topology";
    if (ctx.effective_graph() == nullptr) return "no network graph";
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    return check_graph_structure(*ctx.topology, *ctx.effective_graph(),
                                 ctx.source, report);
  }
};

class RoutesPass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "routes"; }
  [[nodiscard]] std::string_view summary() const override {
    return "single-path route validity vs graph and distance table";
  }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (!ctx.plan) return "no route plan";
    if (ctx.effective_graph() == nullptr) return "no network graph";
    if (!ctx.plan->single_path()) return "multipath plan (ecmp pass covers it)";
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    const auto pairs = route_sample(ctx);
    const int bfs_spot_checks =
        static_cast<int>(std::min<std::size_t>(64, pairs.size()));
    return check_routes(*ctx.plan, *ctx.effective_graph(), pairs,
                        bfs_spot_checks, ctx.source, report);
  }
};

class EcmpPass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "ecmp"; }
  [[nodiscard]] std::string_view summary() const override {
    return "ECMP share validity and per-vertex flow conservation";
  }
  [[nodiscard]] CostTier cost() const override { return CostTier::Expensive; }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (!ctx.plan) return "no route plan";
    if (ctx.plan->single_path()) {
      return "single-path plan (routes pass covers it)";
    }
    if (ctx.effective_graph() == nullptr) return "no network graph";
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    return check_ecmp_flow(*ctx.plan, *ctx.effective_graph(),
                           route_sample(ctx), ctx.source, report);
  }
};

class FaultsPass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "faults"; }
  [[nodiscard]] std::string_view summary() const override {
    return "fault-mask soundness: usable links, disconnection, reachability";
  }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (!ctx.plan) return "no route plan";
    if (ctx.effective_graph() == nullptr) return "no network graph";
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    return check_fault_accounting(*ctx.plan, *ctx.effective_graph(),
                                  ctx.plan->usable_links(), route_sample(ctx),
                                  ctx.source, report);
  }
};

class MetricsPass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "metrics"; }
  [[nodiscard]] std::string_view summary() const override {
    return "hop/utilization/link-share recomputation vs stored results";
  }
  [[nodiscard]] CostTier cost() const override { return CostTier::Expensive; }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (ctx.traffic == nullptr) return "no traffic matrix";
    if (ctx.topology == nullptr) return "no topology";
    if (!ctx.plan) return "no route plan";
    if (ctx.duration <= 0.0) return "no execution time";
    if (ctx.mapping == nullptr &&
        ctx.traffic->num_ranks() > ctx.topology->num_nodes()) {
      return "more ranks than nodes under the default linear mapping";
    }
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    const mapping::Mapping mapping =
        ctx.mapping != nullptr
            ? *ctx.mapping
            : mapping::Mapping::linear(ctx.traffic->num_ranks(),
                                       ctx.topology->num_nodes());
    analysis::TopologyResult computed;
    const analysis::TopologyResult* expected = ctx.expected;
    if (expected == nullptr) {
      // No stored cell supplied: produce the reference through the
      // metrics:: stack, then check the independent recomputation
      // against it.
      computed = analysis::analyze_topology(*ctx.traffic, *ctx.topology,
                                            ctx.traffic->num_ranks(),
                                            ctx.duration, ctx.run,
                                            ctx.plan.get());
      expected = &computed;
    }
    return check_metrics(*ctx.traffic, *ctx.topology, *ctx.plan, mapping,
                         ctx.duration, ctx.run, *expected, ctx.source, report);
  }
};

class CachePass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "cache"; }
  [[nodiscard]] std::string_view summary() const override {
    return "NLRC blob audit: decode, re-key, orphan detection";
  }
  [[nodiscard]] CostTier cost() const override { return CostTier::Expensive; }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (ctx.cache_dir.empty()) return "no cache directory";
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    return check_cache_dir(ctx.cache_dir, ctx.run, ctx.source, report);
  }
};

class TaskGraphPass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "taskgraph"; }
  [[nodiscard]] std::string_view summary() const override {
    return "task-graph cycle and orphan detection";
  }
  [[nodiscard]] CostTier cost() const override { return CostTier::Cheap; }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (ctx.task_graph == nullptr) return "no task graph";
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    return check_task_graph(*ctx.task_graph, ctx.source, report);
  }
};

class TrafficPass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "traffic"; }
  [[nodiscard]] std::string_view summary() const override {
    return "traffic-matrix invariants and tiled re-accumulation equivalence";
  }
  [[nodiscard]] CostTier cost() const override { return CostTier::Cheap; }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (ctx.traffic == nullptr) return "no traffic matrix";
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    std::size_t checks = check_traffic_matrix(*ctx.traffic, ctx.source, report);
    // Re-accumulate through 8-row strips: tiled for any matrix beyond
    // 8 ranks, so the equivalence exercises many strip switches.
    const std::size_t strip_budget =
        static_cast<std::size_t>(ctx.traffic->num_ranks()) *
        sizeof(metrics::TrafficCell) * 8;
    checks += check_tiled_equivalence(*ctx.traffic,
                                      rebuild_tiled(*ctx.traffic, strip_budget),
                                      ctx.source, report);
    return checks;
  }
};

class PlacementPass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "placement"; }
  [[nodiscard]] std::string_view summary() const override {
    return "placement consistency and hierarchical-collective conservation";
  }
  [[nodiscard]] CostTier cost() const override { return CostTier::Cheap; }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (ctx.placement == nullptr) return "no placement";
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    const mapping::Placement& placement = *ctx.placement;
    std::size_t checks =
        check_placement(placement.raw(), placement.num_nodes(),
                        placement.machine(), placement.flat_view(), ctx.source,
                        report);
    // Conservation sweep over the placement's induced grouping: one
    // synthetic collective per operation class, claimed totals from
    // the emission itself so the laws (not the bookkeeping) are what
    // can fail here.
    if (placement.num_ranks() >= 2) {
      const collectives::NodeGroups groups(placement.node_table());
      const Bytes volume = 1'000'000;
      for (const auto op :
           {trace::CollectiveOp::Bcast, trace::CollectiveOp::Reduce,
            trace::CollectiveOp::Barrier, trace::CollectiveOp::Allreduce,
            trace::CollectiveOp::Allgather, trace::CollectiveOp::Alltoall}) {
        const auto claimed = collectives::hierarchical_volume(
            op, 0, placement.num_ranks(), volume, groups);
        checks += check_hierarchical_conservation(op, 0, placement.num_ranks(),
                                                  volume, groups, claimed,
                                                  ctx.source, report);
      }
    }
    return checks;
  }
};

class CongestionPass final : public VerifyPass {
 public:
  [[nodiscard]] std::string_view id() const override { return "congestion"; }
  [[nodiscard]] std::string_view summary() const override {
    return "windowed traffic/link-load conservation vs the aggregate";
  }
  [[nodiscard]] std::string applicable(const VerifyContext& ctx) const override {
    if (ctx.window_traffic == nullptr) return "no windowed traffic";
    if (ctx.traffic == nullptr) return "no traffic matrix";
    return {};
  }
  std::size_t run(const VerifyContext& ctx,
                  lint::LintReport& report) const override {
    // The load half needs a rank -> node mapping; without an explicit
    // one the paper's linear mapping applies when it fits the plan's
    // node space, otherwise only the matrix half is checked.
    const topology::RoutePlan* plan = ctx.plan.get();
    const mapping::Mapping* mapping = ctx.mapping;
    std::optional<mapping::Mapping> linear;
    if (plan != nullptr && mapping == nullptr) {
      if (ctx.traffic->num_ranks() <= plan->num_nodes()) {
        linear.emplace(mapping::Mapping::linear(ctx.traffic->num_ranks(),
                                                plan->num_nodes()));
        mapping = &*linear;
      } else {
        plan = nullptr;
      }
    }
    return check_window_conservation(ctx.window_traffic->windows, *ctx.traffic,
                                     plan, mapping, ctx.source, report);
  }
};

}  // namespace

const char* to_string(CostTier tier) {
  switch (tier) {
    case CostTier::Cheap:
      return "cheap";
    case CostTier::Standard:
      return "standard";
    case CostTier::Expensive:
      return "expensive";
  }
  return "?";
}

lint::LintReport VerifyReport::merged() const {
  lint::LintReport out;
  for (const auto& pass : passes) out.merge(pass.report);
  return out;
}

std::size_t VerifyReport::total_checks() const {
  std::size_t total = 0;
  for (const auto& pass : passes) total += pass.checks;
  return total;
}

VerifyRunner::VerifyRunner() {
  add(std::make_unique<GraphPass>());
  add(std::make_unique<RoutesPass>());
  add(std::make_unique<EcmpPass>());
  add(std::make_unique<FaultsPass>());
  add(std::make_unique<MetricsPass>());
  add(std::make_unique<CachePass>());
  add(std::make_unique<TaskGraphPass>());
  add(std::make_unique<TrafficPass>());
  add(std::make_unique<PlacementPass>());
  add(std::make_unique<CongestionPass>());
}

void VerifyRunner::add(std::unique_ptr<VerifyPass> pass) {
  if (find(pass->id()) != nullptr) {
    throw ConfigError("verify: duplicate pass id '" +
                      std::string(pass->id()) + "'");
  }
  passes_.push_back(std::move(pass));
}

const VerifyPass* VerifyRunner::find(std::string_view id) const {
  for (const auto& pass : passes_) {
    if (pass->id() == id) return pass.get();
  }
  return nullptr;
}

VerifyReport VerifyRunner::run(const VerifyContext& ctx,
                               const PassFilter& filter) const {
  for (const auto& id : filter.ids) {
    if (find(id) == nullptr) {
      throw ConfigError("verify: unknown pass id '" + id +
                        "' (see netloc_cli verify --help for the list)");
    }
  }
  VerifyReport out;
  for (const auto& pass : passes_) {
    if (!filter.ids.empty() &&
        std::find(filter.ids.begin(), filter.ids.end(),
                  std::string(pass->id())) == filter.ids.end()) {
      continue;
    }
    PassOutcome outcome;
    outcome.id = std::string(pass->id());
    if (pass->cost() > filter.max_cost) {
      outcome.skipped = true;
      outcome.skip_reason = std::string("cost tier ") +
                            to_string(pass->cost()) + " above the filter's " +
                            to_string(filter.max_cost);
    } else if (std::string reason = pass->applicable(ctx); !reason.empty()) {
      outcome.skipped = true;
      outcome.skip_reason = std::move(reason);
    } else {
      const auto begin = std::chrono::steady_clock::now();
      outcome.checks = pass->run(ctx, outcome.report);
      outcome.elapsed = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - begin)
                            .count();
    }
    out.passes.push_back(std::move(outcome));
  }
  return out;
}

void write_text(const VerifyReport& report, std::ostream& out) {
  std::size_t ran = 0;
  for (const auto& pass : report.passes) {
    if (pass.skipped) {
      out << "pass " << pass.id << ": skipped (" << pass.skip_reason << ")\n";
      continue;
    }
    ++ran;
    const std::size_t findings = pass.report.diagnostics().size();
    out << "pass " << pass.id << ": ";
    if (findings == 0) {
      out << "ok";
    } else {
      out << findings << " finding" << (findings == 1 ? "" : "s");
    }
    out << " (" << pass.checks << " checks, "
        << static_cast<long>(pass.elapsed * 1e3 + 0.5) << " ms)\n";
  }
  const lint::LintReport merged = report.merged();
  if (!merged.empty()) {
    lint::write_text(merged, out);
  } else {
    out << "verify: clean — " << report.total_checks() << " checks across "
        << ran << " pass" << (ran == 1 ? "" : "es") << "\n";
  }
}

void write_csv(const VerifyReport& report, std::ostream& out) {
  lint::write_csv(report.merged(), out);
}

}  // namespace netloc::verify
