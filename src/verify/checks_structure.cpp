// Cache blob audit (VF012/VF013), task-graph structure (VF014/VF015),
// traffic-matrix invariants (VF016) and tiled-accumulation
// equivalence (VF017).
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "netloc/common/units.hpp"
#include "netloc/engine/result_cache.hpp"
#include "netloc/engine/task_graph.hpp"
#include "netloc/verify/checks.hpp"
#include "netloc/workloads/catalog.hpp"

#include "internal.hpp"

namespace netloc::verify {

namespace {

/// Parse a 16-lowercase-hex-digit blob stem into its key hash.
bool parse_blob_stem(const std::string& stem, std::uint64_t& hash) {
  if (stem.size() != 16) return false;
  hash = 0;
  for (const char c : stem) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    hash = (hash << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

}  // namespace

std::size_t check_cache_dir(const std::string& dir,
                            const analysis::RunOptions& options,
                            const std::string& source,
                            lint::LintReport& report) {
  namespace fs = std::filesystem;
  Emitter em(report, source);
  std::size_t checks = 1;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    em.emit("VF013", -1, "cache directory '" + dir + "' does not exist");
    return checks;
  }

  // The key space the current catalog spans under these options: any
  // blob outside it is an orphan (stale seed/routing/catalog).
  std::map<std::string, std::string> expected;  // file name -> label
  for (const auto& entry : workloads::catalog()) {
    const auto key = engine::result_cache_key(entry, options);
    expected.emplace(key.file_name(), key.label);
  }

  std::vector<fs::path> blobs;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (de.path().extension() == ".nlrc") blobs.push_back(de.path());
  }
  std::sort(blobs.begin(), blobs.end());

  for (const auto& path : blobs) {
    ++checks;
    const std::string name = path.filename().string();
    std::uint64_t hash = 0;
    if (!parse_blob_stem(path.stem().string(), hash)) {
      em.emit("VF012", -1,
              name + ": blob name is not 16 lowercase hex digits",
              "delete the file; the cache never writes such names");
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      em.emit("VF012", -1, name + ": blob is unreadable");
      continue;
    }
    try {
      const analysis::ExperimentRow row = engine::read_row_blob(in, hash);
      if (const auto it = expected.find(name); it != expected.end()) {
        // In-catalog blob: the embedded entry must re-key to the file
        // name it sits under, or a stale row is masquerading as fresh.
        ++checks;
        const auto rekey = engine::result_cache_key(row.entry, options);
        if (rekey.hash != hash) {
          em.emit("VF012", -1,
                  name + " (" + it->second +
                      "): embedded entry re-keys to a different hash — "
                      "stale row under a current key");
        }
      } else {
        em.emit("VF013", -1,
                name + " (" + row.entry.label() +
                    "): key not in the current catalog/options key space",
                "stale blob; safe to delete or leave for LRU trimming");
      }
    } catch (const engine::CacheFormatError& e) {
      em.emit("VF012", -1, name + ": " + e.what(),
              "the engine treats this as a miss and overwrites it");
    }
  }
  return checks;
}

std::size_t check_task_graph(const engine::TaskGraph& graph,
                             const std::string& source,
                             lint::LintReport& report) {
  Emitter em(report, source);
  std::size_t checks = 0;
  const std::size_t n = graph.size();

  // Kahn scheduling dry-run: every job must become ready.
  std::vector<int> remaining(n, 0);
  std::vector<engine::JobId> ready;
  for (engine::JobId id = 0; id < n; ++id) {
    remaining[id] = graph.dependency_count(id);
    if (remaining[id] == 0) ready.push_back(id);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const engine::JobId id = ready.back();
    ready.pop_back();
    ++processed;
    for (const engine::JobId dep : graph.dependents(id)) {
      if (--remaining[dep] == 0) ready.push_back(dep);
    }
  }
  ++checks;
  if (processed != n) {
    for (engine::JobId id = 0; id < n; ++id) {
      if (remaining[id] > 0) {
        em.emit("VF014", static_cast<long>(id),
                "dependency cycle: job '" + graph.label(id) + "' (phase " +
                    graph.phase(id) + ") can never become ready (" +
                    std::to_string(n - processed) + " jobs stuck)");
        break;
      }
    }
  }

  // Orphans: a job with no edges in a multi-job graph usually means a
  // forgotten add_edge, not a deliberate singleton.
  for (engine::JobId id = 0; id < n; ++id) {
    ++checks;
    if (n > 1 && graph.dependency_count(id) == 0 &&
        graph.dependents(id).empty()) {
      em.emit("VF015", static_cast<long>(id),
              "job '" + graph.label(id) + "' (phase " + graph.phase(id) +
                  ") has no dependencies and no dependents");
    }
  }
  return checks;
}

std::size_t check_traffic_matrix(const metrics::TrafficMatrix& matrix,
                                 const std::string& source,
                                 lint::LintReport& report) {
  Emitter em(report, source);
  std::size_t checks = 1;
  const int n = matrix.num_ranks();
  if (n < 1 || n > metrics::TrafficMatrix::kMaxRanks) {
    em.emit("VF016", -1,
            "rank count " + std::to_string(n) + " outside [1, " +
                std::to_string(metrics::TrafficMatrix::kMaxRanks) + "]");
  }
  Bytes sum_bytes = 0;
  Count sum_packets = 0;
  std::size_t cells = 0;
  Rank prev_src = -1;
  Rank prev_dst = -1;
  matrix.for_each_nonzero([&](Rank s, Rank d, const metrics::TrafficCell& cell) {
    ++cells;
    if (s < 0 || s >= n || d < 0 || d >= n) {
      em.emit("VF016", s,
              "cell (" + std::to_string(s) + ", " + std::to_string(d) +
                  ") outside the rank range [0, " + std::to_string(n) + ")");
    }
    if (s < prev_src || (s == prev_src && d <= prev_dst)) {
      em.emit("VF016", s,
              "iteration order not strictly ascending at cell (" +
                  std::to_string(s) + ", " + std::to_string(d) + ")");
    }
    prev_src = s;
    prev_dst = d;
    if (cell.packets == 0) {
      em.emit("VF016", s,
              "cell (" + std::to_string(s) + ", " + std::to_string(d) +
                  ") stores " + std::to_string(cell.bytes) +
                  " bytes with zero packets (every message costs >= 1)");
    } else if (packets_for(cell.bytes) > cell.packets) {
      // Eq. 3 per message: ceil(bytes / 4 KiB), floored at one packet.
      // Summed over any message set, ceil(total / 4 KiB) is a lower
      // bound on the packet total.
      em.emit("VF016", s,
              "cell (" + std::to_string(s) + ", " + std::to_string(d) +
                  "): " + std::to_string(cell.bytes) + " bytes cannot fit in " +
                  std::to_string(cell.packets) + " packets of " +
                  std::to_string(kPacketPayload) + " bytes (Eq. 3)");
    }
    sum_bytes += cell.bytes;
    sum_packets += cell.packets;
  });
  checks += cells;
  ++checks;
  if (cells != matrix.nonzero_pairs()) {
    em.emit("VF016", -1,
            "nonzero_pairs() reports " +
                std::to_string(matrix.nonzero_pairs()) + " but iteration "
                "visited " +
                std::to_string(cells) + " cells");
  }
  ++checks;
  if (sum_bytes != matrix.total_bytes()) {
    em.emit("VF016", -1,
            "total_bytes() " + std::to_string(matrix.total_bytes()) +
                " != cell sum " + std::to_string(sum_bytes));
  }
  ++checks;
  if (sum_packets != matrix.total_packets()) {
    em.emit("VF016", -1,
            "total_packets() " + std::to_string(matrix.total_packets()) +
                " != cell sum " + std::to_string(sum_packets));
  }
  return checks;
}

metrics::TrafficMatrix rebuild_tiled(const metrics::TrafficMatrix& matrix,
                                     std::size_t open_budget_bytes) {
  metrics::TrafficMatrix out(matrix.num_ranks(), open_budget_bytes);
  matrix.for_each_nonzero(
      [&](Rank src, Rank dst, const metrics::TrafficCell& cell) {
        out.add_cell(src, dst, cell.bytes, cell.packets);
      });
  out.freeze();
  return out;
}

std::size_t check_tiled_equivalence(const metrics::TrafficMatrix& original,
                                    const metrics::TrafficMatrix& rebuilt,
                                    const std::string& source,
                                    lint::LintReport& report) {
  Emitter em(report, source);
  std::size_t checks = 1;
  if (rebuilt.num_ranks() != original.num_ranks()) {
    em.emit("VF017", -1,
            "rebuilt matrix spans " + std::to_string(rebuilt.num_ranks()) +
                " ranks but the original spans " +
                std::to_string(original.num_ranks()));
    return checks;  // cell lookups below would be out of range
  }
  ++checks;
  if (rebuilt.nonzero_pairs() != original.nonzero_pairs()) {
    em.emit("VF017", -1,
            "rebuilt matrix stores " +
                std::to_string(rebuilt.nonzero_pairs()) +
                " nonzero pairs but the original stores " +
                std::to_string(original.nonzero_pairs()));
  }
  ++checks;
  if (rebuilt.total_bytes() != original.total_bytes() ||
      rebuilt.total_packets() != original.total_packets()) {
    em.emit("VF017", -1,
            "rebuilt totals (" + std::to_string(rebuilt.total_bytes()) +
                " B, " + std::to_string(rebuilt.total_packets()) +
                " packets) != original (" +
                std::to_string(original.total_bytes()) + " B, " +
                std::to_string(original.total_packets()) + " packets)");
  }
  std::size_t cells = 0;
  original.for_each_nonzero(
      [&](Rank s, Rank d, const metrics::TrafficCell& cell) {
        ++cells;
        if (rebuilt.bytes(s, d) != cell.bytes ||
            rebuilt.packets(s, d) != cell.packets) {
          em.emit("VF017", s,
                  "cell (" + std::to_string(s) + ", " + std::to_string(d) +
                      "): rebuilt (" + std::to_string(rebuilt.bytes(s, d)) +
                      " B, " + std::to_string(rebuilt.packets(s, d)) +
                      " packets) != original (" + std::to_string(cell.bytes) +
                      " B, " + std::to_string(cell.packets) + " packets)");
        }
      });
  return checks + cells;
}

}  // namespace netloc::verify
