// Pair sampling plus the graph structural audit (VF001-VF003).
#include <string>
#include <vector>

#include "netloc/common/prng.hpp"
#include "netloc/verify/checks.hpp"
#include "internal.hpp"

namespace netloc::verify {

namespace {

/// Fixed sampling seed: "netloc" in ASCII. Verification must be
/// reproducible run to run, so the draw never depends on wall clock.
constexpr std::uint64_t kSampleSeed = 0x6e65746c6f63ULL;

}  // namespace

std::vector<topology::NodePair> sample_pairs(int window, int max_pairs) {
  std::vector<topology::NodePair> pairs;
  if (window < 2 || max_pairs <= 0) return pairs;
  const auto total =
      static_cast<std::int64_t>(window) * static_cast<std::int64_t>(window - 1);
  if (total <= max_pairs) {
    pairs.reserve(static_cast<std::size_t>(total));
    for (int a = 0; a < window; ++a) {
      for (int b = 0; b < window; ++b) {
        if (a != b) pairs.push_back({a, b});
      }
    }
    return pairs;
  }
  Xoshiro256 rng(kSampleSeed);
  pairs.reserve(static_cast<std::size_t>(max_pairs));
  for (int i = 0; i < max_pairs; ++i) {
    const auto a =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window)));
    auto b =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(window - 1)));
    if (b >= a) ++b;  // skip the diagonal without rejection sampling
    pairs.push_back({a, b});
  }
  return pairs;
}

std::size_t check_graph_structure(const topology::Topology& topo,
                                  const topology::NetworkGraph& graph,
                                  const std::string& source,
                                  lint::LintReport& report) {
  Emitter em(report, source);
  std::size_t checks = 0;

  // ---- id-space agreement with the topology ----------------------------
  ++checks;
  if (graph.num_links() != topo.num_links()) {
    em.emit("VF001", -1,
            "graph has " + std::to_string(graph.num_links()) +
                " link ids but the topology declares " +
                std::to_string(topo.num_links()));
  }
  ++checks;
  if (graph.num_endpoints() != topo.num_nodes()) {
    em.emit("VF001", -1,
            "graph has " + std::to_string(graph.num_endpoints()) +
                " endpoints but the topology has " +
                std::to_string(topo.num_nodes()) + " nodes");
  }

  // ---- per-link sanity --------------------------------------------------
  const int num_vertices = graph.num_vertices();
  int present = 0;
  for (LinkId id = 0; id < graph.num_links(); ++id) {
    const auto& link = graph.link(id);
    if (!link.present) continue;
    ++present;
    ++checks;
    if (link.u < 0 || link.u >= num_vertices || link.v < 0 ||
        link.v >= num_vertices || link.u == link.v) {
      em.emit("VF001", id,
              "link " + std::to_string(id) + " has invalid endpoints (" +
                  std::to_string(link.u) + ", " + std::to_string(link.v) +
                  ")");
    }
    if (id < topo.num_links()) {
      ++checks;
      if (topo.link_is_global(id) != graph.link_is_global(id)) {
        em.emit("VF001", id,
                "link " + std::to_string(id) +
                    ": graph and topology disagree on the global flag");
      }
    }
  }
  ++checks;
  if (present != graph.num_present_links()) {
    em.emit("VF001", -1,
            "num_present_links() reports " +
                std::to_string(graph.num_present_links()) + " but " +
                std::to_string(present) + " links are present");
  }

  // ---- CSR adjacency: sortedness, dedup, symmetry, degree sum -----------
  std::vector<int> incidences(static_cast<std::size_t>(graph.num_links()), 0);
  for (int v = 0; v < num_vertices; ++v) {
    LinkId prev = -1;
    bool sorted = true;
    graph.for_each_incident(v, [&](LinkId l, int other) {
      if (l <= prev) sorted = false;
      prev = l;
      if (l < 0 || l >= graph.num_links()) {
        em.emit("VF001", v,
                "vertex " + std::to_string(v) +
                    " adjacency references out-of-range link " +
                    std::to_string(l));
        return;
      }
      ++incidences[static_cast<std::size_t>(l)];
      const auto& link = graph.link(l);
      if (!link.present) {
        em.emit("VF001", l,
                "adjacency references absent link " + std::to_string(l));
        return;
      }
      const bool matches = (link.u == v && link.v == other) ||
                           (link.v == v && link.u == other);
      if (!matches) {
        em.emit("VF001", l,
                "adjacency entry (vertex " + std::to_string(v) + ", link " +
                    std::to_string(l) + ", other " + std::to_string(other) +
                    ") disagrees with the link's endpoints");
      }
    });
    ++checks;
    if (!sorted) {
      em.emit("VF001", v,
              "vertex " + std::to_string(v) +
                  " adjacency is not strictly ascending by link id "
                  "(unsorted or duplicated entries)");
    }
  }
  for (LinkId id = 0; id < graph.num_links(); ++id) {
    ++checks;
    const int expected = graph.link_present(id) ? 2 : 0;
    if (incidences[static_cast<std::size_t>(id)] != expected) {
      em.emit("VF001", id,
              "link " + std::to_string(id) + " appears " +
                  std::to_string(incidences[static_cast<std::size_t>(id)]) +
                  " times in the adjacency (expected " +
                  std::to_string(expected) + ") — asymmetric CSR");
    }
  }

  // ---- per-family degree regularity -------------------------------------
  const std::string family = topo.name();
  const bool known_family = family == "torus3d" || family == "fattree" ||
                            family == "dragonfly" || family == "rrg";
  if (known_family && graph.num_endpoints() > 0) {
    const int d0 = graph.degree(0);
    ++checks;
    bool uniform = true;
    for (int v = 1; v < graph.num_endpoints(); ++v) {
      if (graph.degree(v) != d0) {
        uniform = false;
        em.emit("VF002", v,
                family + " endpoint " + std::to_string(v) + " has degree " +
                    std::to_string(graph.degree(v)) +
                    " but endpoint 0 has degree " + std::to_string(d0));
        break;
      }
    }
    if (uniform && (family == "fattree" || family == "dragonfly" ||
                    family == "rrg")) {
      ++checks;
      if (d0 != 1) {
        em.emit("VF002", 0,
                family + " endpoints have degree " + std::to_string(d0) +
                    " (expected exactly one injection link)");
      }
    }
  }

  // ---- connectivity -----------------------------------------------------
  ++checks;
  if (!graph.endpoints_connected()) {
    em.emit("VF003", -1,
            "endpoint set is disconnected with no fault mask applied");
  }
  return checks;
}

}  // namespace netloc::verify
