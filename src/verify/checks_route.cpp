// Route validity, ECMP flow conservation and fault-mask accounting
// (VF004-VF010).
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "netloc/verify/checks.hpp"

#include "internal.hpp"

namespace netloc::verify {

namespace {

/// Bitmap form of the plan's failed-link set over the graph's id space
/// (the plan keeps its own bitmap private).
std::vector<std::uint8_t> failed_bitmap(const topology::RoutePlan& plan,
                                        const topology::NetworkGraph& graph) {
  std::vector<std::uint8_t> mask;
  if (plan.spec().failed_links.empty()) return mask;
  mask.assign(static_cast<std::size_t>(graph.num_links()), 0);
  for (const LinkId id : plan.spec().failed_links) {
    if (id >= 0 && id < graph.num_links()) {
      mask[static_cast<std::size_t>(id)] = 1;
    }
  }
  return mask;
}

std::string pair_label(NodeId a, NodeId b) {
  return std::to_string(a) + " -> " + std::to_string(b);
}

}  // namespace

std::size_t check_routes(const topology::RoutePlan& plan,
                         const topology::NetworkGraph& graph,
                         std::span<const topology::NodePair> pairs,
                         int bfs_spot_checks, const std::string& source,
                         lint::LintReport& report) {
  if (!plan.single_path()) return 0;
  Emitter em(report, source);
  std::size_t checks = 0;
  const std::vector<std::uint8_t> mask_storage = failed_bitmap(plan, graph);
  const topology::LinkMask mask(mask_storage);
  int bfs_left = bfs_spot_checks;
  for (const auto& [a, b] : pairs) {
    ++checks;
    const int d = plan.hop_distance(a, b);
    if (a == b) {
      if (d != 0) {
        em.emit("VF005", a,
                "self pair " + pair_label(a, b) + " reports distance " +
                    std::to_string(d) + " (expected 0)");
      }
      continue;
    }
    if (d < 0) {
      if (!plan.disconnected()) {
        em.emit("VF005", a,
                "pair " + pair_label(a, b) +
                    " is unreachable but the plan reports no disconnection");
      } else if (bfs_left > 0) {
        --bfs_left;
        ++checks;
        if (graph.bfs_distance(a, b, mask) >= 0) {
          em.emit("VF006", a,
                  "plan reports " + pair_label(a, b) +
                      " unreachable but BFS finds a path under the mask");
        }
      }
      continue;
    }
    // Walk the route link by link, tracking the current vertex.
    int length = 0;
    NodeId cur = a;
    bool walk_ok = true;
    plan.for_each_route_link(a, b, [&](LinkId l) {
      ++length;
      if (!walk_ok) return;
      if (l < 0 || l >= graph.num_links()) {
        em.emit("VF004", l,
                "route " + pair_label(a, b) +
                    " traverses out-of-range link id " + std::to_string(l));
        walk_ok = false;
        return;
      }
      const auto& link = graph.link(l);
      if (!link.present) {
        em.emit("VF004", l,
                "route " + pair_label(a, b) + " traverses absent link " +
                    std::to_string(l));
        walk_ok = false;
        return;
      }
      if (graph.masked(l, mask)) {
        em.emit("VF004", l,
                "route " + pair_label(a, b) + " traverses failed link " +
                    std::to_string(l));
        walk_ok = false;
        return;
      }
      if (link.u == cur) {
        cur = link.v;
      } else if (link.v == cur) {
        cur = link.u;
      } else {
        em.emit("VF004", l,
                "route " + pair_label(a, b) + ": link " + std::to_string(l) +
                    " is not incident to the current vertex " +
                    std::to_string(cur));
        walk_ok = false;
      }
    });
    if (walk_ok && cur != b) {
      em.emit("VF004", a,
              "route " + pair_label(a, b) + " ends at vertex " +
                  std::to_string(cur) + " instead of " + std::to_string(b));
      walk_ok = false;
    }
    if (walk_ok) {
      ++checks;
      if (length != d) {
        em.emit("VF005", a,
                "route " + pair_label(a, b) + " has " +
                    std::to_string(length) +
                    " links but the distance table says " + std::to_string(d));
      }
      if (bfs_left > 0) {
        --bfs_left;
        ++checks;
        const int bfs = graph.bfs_distance(a, b, mask);
        if (bfs < 0) {
          em.emit("VF006", a,
                  "plan routes " + pair_label(a, b) +
                      " but BFS deems the pair unreachable under the mask");
        } else if (d < bfs) {
          // Minimal closed forms may exceed BFS (the dragonfly's
          // group-local detours are non-shortest by design) but can
          // never beat it.
          em.emit("VF006", a,
                  "plan distance " + std::to_string(d) + " for " +
                      pair_label(a, b) + " is below the BFS shortest path " +
                      std::to_string(bfs));
        }
      }
    }
  }
  return checks;
}

std::size_t check_ecmp_pair(const topology::NetworkGraph& graph, NodeId a,
                            NodeId b, int hop_distance,
                            std::span<const topology::WeightedLink> links,
                            topology::LinkMask mask, const std::string& source,
                            lint::LintReport& report) {
  Emitter em(report, source);
  std::size_t checks = 1;
  if (a == b) {
    if (hop_distance != 0) {
      em.emit("VF006", a,
              "self pair " + pair_label(a, b) + " claims distance " +
                  std::to_string(hop_distance));
    }
    if (!links.empty()) {
      em.emit("VF007", a,
              "self pair " + pair_label(a, b) + " carries " +
                  std::to_string(links.size()) + " link shares");
    }
    return checks;
  }
  const auto dist_a = graph.bfs_distances(a, mask);
  const auto dist_b = graph.bfs_distances(b, mask);
  const int shortest = dist_a[static_cast<std::size_t>(b)];
  ++checks;
  if (hop_distance != shortest) {
    em.emit("VF006", a,
            "pair " + pair_label(a, b) + " claims distance " +
                std::to_string(hop_distance) + " but BFS finds " +
                std::to_string(shortest));
  }
  if (shortest < 0) {
    if (!links.empty()) {
      em.emit("VF008", a,
              "unreachable pair " + pair_label(a, b) + " carries link shares");
    }
    return checks;
  }

  constexpr double kShareEps = 1e-9;
  const double tol = 1e-9 * std::max(1.0, static_cast<double>(shortest));
  // Net flow (out minus in) per vertex under the DAG orientation.
  std::vector<double> net(static_cast<std::size_t>(graph.num_vertices()), 0.0);
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(graph.num_links()),
                                 0);
  double total_share = 0.0;
  for (const auto& wl : links) {
    ++checks;
    if (wl.link < 0 || wl.link >= graph.num_links()) {
      em.emit("VF008", wl.link,
              "pair " + pair_label(a, b) + ": share on out-of-range link id " +
                  std::to_string(wl.link));
      continue;
    }
    const auto li = static_cast<std::size_t>(wl.link);
    if (seen[li]) {
      em.emit("VF007", wl.link,
              "pair " + pair_label(a, b) + ": link " + std::to_string(wl.link) +
                  " appears twice in the share set (shares must be summed)");
    }
    seen[li] = 1;
    if (!(wl.share > 0.0) || wl.share > 1.0 + kShareEps) {
      em.emit("VF007", wl.link,
              "pair " + pair_label(a, b) + ": share " +
                  std::to_string(wl.share) + " on link " +
                  std::to_string(wl.link) + " is outside (0, 1]");
    }
    const auto& link = graph.link(wl.link);
    if (!link.present || graph.masked(wl.link, mask)) {
      em.emit("VF008", wl.link,
              "pair " + pair_label(a, b) + ": share on absent or failed link " +
                  std::to_string(wl.link));
      continue;
    }
    // Orient the edge along increasing distance from the source.
    int u = link.u;
    int v = link.v;
    const auto du = dist_a[static_cast<std::size_t>(u)];
    const auto dv = dist_a[static_cast<std::size_t>(v)];
    if (du >= 0 && dv == du + 1) {
      // forward as stored
    } else if (dv >= 0 && du == dv + 1) {
      std::swap(u, v);
    } else {
      em.emit("VF008", wl.link,
              "pair " + pair_label(a, b) + ": link " + std::to_string(wl.link) +
                  " is not a forward edge of the shortest-path DAG");
      continue;
    }
    ++checks;
    if (dist_a[static_cast<std::size_t>(u)] + 1 +
            dist_b[static_cast<std::size_t>(v)] !=
        shortest) {
      em.emit("VF008", wl.link,
              "pair " + pair_label(a, b) + ": link " + std::to_string(wl.link) +
                  " lies on no shortest path");
      continue;
    }
    net[static_cast<std::size_t>(u)] += wl.share;
    net[static_cast<std::size_t>(v)] -= wl.share;
    total_share += wl.share;
  }

  ++checks;
  if (std::abs(net[static_cast<std::size_t>(a)] - 1.0) > tol) {
    em.emit("VF008", a,
            "pair " + pair_label(a, b) + ": net flow out of the source is " +
                std::to_string(net[static_cast<std::size_t>(a)]) +
                " (expected 1)");
  }
  ++checks;
  if (std::abs(net[static_cast<std::size_t>(b)] + 1.0) > tol) {
    em.emit("VF008", b,
            "pair " + pair_label(a, b) +
                ": net flow into the destination is " +
                std::to_string(-net[static_cast<std::size_t>(b)]) +
                " (expected 1)");
  }
  ++checks;  // one logical check over all intermediates
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if (v == a || v == b) continue;
    if (std::abs(net[static_cast<std::size_t>(v)]) > tol) {
      em.emit("VF008", v,
              "pair " + pair_label(a, b) +
                  ": flow not conserved at intermediate vertex " +
                  std::to_string(v) + " (net " +
                  std::to_string(net[static_cast<std::size_t>(v)]) + ")");
    }
  }
  ++checks;
  if (std::abs(total_share - static_cast<double>(shortest)) > tol) {
    em.emit("VF007", a,
            "pair " + pair_label(a, b) + ": shares sum to " +
                std::to_string(total_share) + " but the hop distance is " +
                std::to_string(shortest));
  }
  return checks;
}

std::size_t check_ecmp_flow(const topology::RoutePlan& plan,
                            const topology::NetworkGraph& graph,
                            std::span<const topology::NodePair> pairs,
                            const std::string& source,
                            lint::LintReport& report) {
  if (plan.single_path()) return 0;
  std::size_t checks = 0;
  const std::vector<std::uint8_t> mask_storage = failed_bitmap(plan, graph);
  const topology::LinkMask mask(mask_storage);
  std::vector<topology::WeightedLink> links;
  for (const auto& [a, b] : pairs) {
    links.clear();
    plan.for_each_weighted_link(a, b, [&links](LinkId l, double share) {
      links.push_back({l, share});
    });
    checks += check_ecmp_pair(graph, a, b, plan.hop_distance(a, b), links,
                              mask, source, report);
  }
  return checks;
}

std::size_t check_fault_accounting(const topology::RoutePlan& plan,
                                   const topology::NetworkGraph& graph,
                                   int claimed_usable_links,
                                   std::span<const topology::NodePair> pairs,
                                   const std::string& source,
                                   lint::LintReport& report) {
  Emitter em(report, source);
  std::size_t checks = 0;
  const std::vector<std::uint8_t> mask_storage = failed_bitmap(plan, graph);
  const topology::LinkMask mask(mask_storage);

  // Eq. 5 denominator input: only failed links that physically exist
  // shrink the usable count (absent ids carry no traffic anyway).
  int present_failed = 0;
  for (const LinkId id : plan.spec().failed_links) {
    if (id >= 0 && id < graph.num_links() && graph.link_present(id)) {
      ++present_failed;
    }
  }
  ++checks;
  const int expected_usable = graph.num_links() - present_failed;
  if (claimed_usable_links != expected_usable) {
    em.emit("VF009", -1,
            "usable_links() reports " + std::to_string(claimed_usable_links) +
                " but " + std::to_string(graph.num_links()) + " link ids - " +
                std::to_string(present_failed) + " present failed links = " +
                std::to_string(expected_usable));
  }
  ++checks;
  const bool connected = graph.endpoints_connected(mask);
  if (plan.disconnected() == connected) {
    em.emit("VF009", -1,
            std::string("plan.disconnected() is ") +
                (plan.disconnected() ? "true" : "false") +
                " but endpoint BFS under the mask says the set is " +
                (connected ? "connected" : "disconnected"));
  }
  for (const auto& [a, b] : pairs) {
    ++checks;
    if (a == b) continue;
    const bool plan_unreachable = plan.hop_distance(a, b) < 0;
    const bool bfs_unreachable = graph.bfs_distance(a, b, mask) < 0;
    if (plan_unreachable != bfs_unreachable) {
      em.emit("VF010", a,
              "pair " + pair_label(a, b) + ": plan says " +
                  (plan_unreachable ? "unreachable" : "routable") +
                  " but masked BFS says " +
                  (bfs_unreachable ? "unreachable" : "routable"));
    }
  }
  return checks;
}

}  // namespace netloc::verify
