// Placement soundness and hierarchical-collective conservation
// (VF018).
#include <string>

#include "netloc/collectives/hierarchical.hpp"
#include "netloc/mapping/placement.hpp"
#include "netloc/verify/checks.hpp"

#include "internal.hpp"

namespace netloc::verify {

std::size_t check_placement(const std::vector<mapping::PlaceCoord>& coords,
                            int num_nodes,
                            const mapping::MachineModel& machine,
                            const mapping::Mapping& claimed_flat_view,
                            const std::string& source,
                            lint::LintReport& report) {
  Emitter em(report, source);
  std::size_t checks = 1;
  if (claimed_flat_view.num_ranks() != static_cast<int>(coords.size())) {
    em.emit("VF018", -1,
            "flat view covers " +
                std::to_string(claimed_flat_view.num_ranks()) +
                " ranks but the placement has " +
                std::to_string(coords.size()));
    return checks;
  }
  for (std::size_t r = 0; r < coords.size(); ++r) {
    const mapping::PlaceCoord& c = coords[r];
    ++checks;
    if (c.node < 0 || c.node >= num_nodes) {
      em.emit("VF018", static_cast<long>(r),
              "rank " + std::to_string(r) + " sits on node " +
                  std::to_string(c.node) + " outside [0, " +
                  std::to_string(num_nodes) + ")");
    }
    ++checks;
    if (c.socket < 0 || c.socket >= machine.sockets_per_node()) {
      em.emit("VF018", static_cast<long>(r),
              "rank " + std::to_string(r) + " sits on socket " +
                  std::to_string(c.socket) + " outside the machine's " +
                  std::to_string(machine.sockets_per_node()) + " sockets");
    }
    ++checks;
    if (c.core < 0 || c.core >= machine.cores_per_socket()) {
      em.emit("VF018", static_cast<long>(r),
              "rank " + std::to_string(r) + " sits on core " +
                  std::to_string(c.core) + " outside the socket's " +
                  std::to_string(machine.cores_per_socket()) + " cores");
    }
    ++checks;
    if (claimed_flat_view.node_of(static_cast<Rank>(r)) != c.node) {
      em.emit("VF018", static_cast<long>(r),
              "flat view maps rank " + std::to_string(r) + " to node " +
                  std::to_string(
                      claimed_flat_view.node_of(static_cast<Rank>(r))) +
                  " but the placement coordinate says node " +
                  std::to_string(c.node));
    }
  }
  return checks;
}

std::size_t check_hierarchical_conservation(
    trace::CollectiveOp op, Rank root, int num_ranks, Bytes total_bytes,
    const collectives::NodeGroups& groups,
    const collectives::HierarchicalVolume& claimed, const std::string& source,
    lint::LintReport& report) {
  Emitter em(report, source);
  std::size_t checks = 0;
  const collectives::HierarchicalVolume actual =
      collectives::hierarchical_volume(op, root, num_ranks, total_bytes,
                                       groups);
  const std::string label = std::string(trace::to_string(op)) + "/" +
                            std::to_string(num_ranks) + " ranks/" +
                            std::to_string(total_bytes) + " B";
  const auto expect_eq = [&](const char* what, Bytes got, Bytes want) {
    ++checks;
    if (got != want) {
      em.emit("VF018", -1,
              label + ": claimed " + what + " bytes " + std::to_string(got) +
                  " != re-emitted " + std::to_string(want));
    }
  };
  expect_eq("intra-up", claimed.intra_up, actual.intra_up);
  expect_eq("network", claimed.network, actual.network);
  expect_eq("intra-down", claimed.intra_down, actual.intra_down);
  expect_eq("flat inter-node", claimed.flat_inter_node,
            actual.flat_inter_node);

  // Conservation laws of the schedule itself (hierarchical.hpp):
  // rooted operations and alltoall relocate the flat inter-node bytes
  // exactly; the reducible all-operations only ever remove
  // replication, never add volume.
  const bool reducible = op == trace::CollectiveOp::Allreduce ||
                         op == trace::CollectiveOp::ReduceScatter ||
                         op == trace::CollectiveOp::Allgather;
  ++checks;
  if (reducible) {
    if (actual.network > actual.flat_inter_node) {
      em.emit("VF018", -1,
              label + ": reducible network stage moves " +
                  std::to_string(actual.network) +
                  " bytes, above the flat inter-node " +
                  std::to_string(actual.flat_inter_node));
    }
  } else if (actual.network != actual.flat_inter_node) {
    em.emit("VF018", -1,
            label + ": network stage moves " + std::to_string(actual.network) +
                " bytes but the flat translation crosses nodes with " +
                std::to_string(actual.flat_inter_node));
  }
  return checks;
}

}  // namespace netloc::verify
