// Independent metric recomputation (VF011): hop totals, Eq. 5
// utilization under both link-count conventions, and the global-link
// packet share, rebuilt by walking the plan directly and compared
// against a stored analyze_topology cell.
#include <algorithm>
#include <string>
#include <vector>

#include "netloc/common/units.hpp"
#include "netloc/metrics/utilization.hpp"
#include "netloc/topology/configs.hpp"
#include "netloc/verify/checks.hpp"

#include "internal.hpp"

namespace netloc::verify {

std::size_t check_metrics(const metrics::TrafficMatrix& matrix,
                          const topology::Topology& topo,
                          const topology::RoutePlan& plan,
                          const mapping::Mapping& mapping, Seconds duration,
                          const analysis::RunOptions& options,
                          const analysis::TopologyResult& expected,
                          const std::string& source,
                          lint::LintReport& report) {
  Emitter em(report, source);
  std::size_t checks = 0;

  // ---- Eq. 3 / Eq. 4: hop totals (mirrors metrics::hop_stats) ----------
  Count packet_hops = 0;
  Count packets = 0;
  matrix.for_each_nonzero([&](Rank s, Rank d, const metrics::TrafficCell& cell) {
    if (cell.packets == 0) return;
    const NodeId ns = mapping.node_of(s);
    const NodeId nd = mapping.node_of(d);
    if (ns != nd) {
      const int hops = plan.hop_distance(ns, nd);
      if (hops < 0) return;  // unroutable: excluded from both totals
      packet_hops += cell.packets * static_cast<Count>(hops);
    }
    packets += cell.packets;
  });
  const double avg_hops =
      packets > 0 ? static_cast<double>(packet_hops) /
                        static_cast<double>(packets)
                  : 0.0;
  ++checks;
  if (packet_hops != expected.packet_hops) {
    em.emit("VF011", -1,
            "recomputed packet hops " + std::to_string(packet_hops) +
                " != stored " + std::to_string(expected.packet_hops));
  }
  ++checks;
  if (!nearly_equal(avg_hops, expected.avg_hops)) {
    em.emit("VF011", -1,
            "recomputed average hops " + std::to_string(avg_hops) +
                " != stored " + std::to_string(expected.avg_hops));
  }

  // ---- Eq. 5, paper link-count convention -------------------------------
  double link_count = topology::paper_link_count(topo, matrix.num_ranks());
  if (plan.usable_links() < plan.num_links()) {
    const int dead = plan.num_links() - plan.usable_links();
    link_count = std::max(0.0, link_count - dead);
  }
  double util = 0.0;
  if (duration > 0.0 && link_count > 0.0) {
    util = 100.0 * static_cast<double>(matrix.total_bytes()) /
           (metrics::kPaperBandwidthBytesPerS * duration * link_count);
  }
  ++checks;
  if (!nearly_equal(util, expected.utilization_percent)) {
    em.emit("VF011", -1,
            "recomputed Eq. 5 utilization " + std::to_string(util) +
                "% != stored " + std::to_string(expected.utilization_percent) +
                "%");
  }

  // ---- per-link accounting (used links, global share) -------------------
  if (options.link_accounting) {
    std::vector<std::uint8_t> touched(
        static_cast<std::size_t>(plan.num_links()), 0);
    int used_links = 0;
    Count total_packets = 0;
    Count global_packets = 0;
    matrix.for_each_nonzero(
        [&](Rank s, Rank d, const metrics::TrafficCell& cell) {
          total_packets += cell.packets;
          const NodeId ns = mapping.node_of(s);
          const NodeId nd = mapping.node_of(d);
          if (ns == nd) return;
          bool crosses_global = false;
          plan.for_each_weighted_link(ns, nd, [&](LinkId link, double) {
            const auto li = static_cast<std::size_t>(link);
            if (!touched[li]) {
              touched[li] = 1;
              ++used_links;
            }
            if (plan.link_is_global(link)) crosses_global = true;
          });
          if (crosses_global) global_packets += cell.packets;
        });
    ++checks;
    if (used_links != expected.used_links) {
      em.emit("VF011", -1,
              "recomputed used links " + std::to_string(used_links) +
                  " != stored " + std::to_string(expected.used_links));
    }
    const double global_share =
        total_packets > 0 ? static_cast<double>(global_packets) /
                                static_cast<double>(total_packets)
                          : 0.0;
    ++checks;
    if (!nearly_equal(global_share, expected.global_link_packet_share)) {
      em.emit("VF011", -1,
              "recomputed global-link packet share " +
                  std::to_string(global_share) + " != stored " +
                  std::to_string(expected.global_link_packet_share));
    }
    double util_used = 0.0;
    if (used_links > 0 && duration > 0.0) {
      util_used = 100.0 * static_cast<double>(matrix.total_bytes()) /
                  (metrics::kPaperBandwidthBytesPerS * duration *
                   static_cast<double>(used_links));
    }
    ++checks;
    if (!nearly_equal(util_used, expected.utilization_used_links_percent)) {
      em.emit("VF011", -1,
              "recomputed used-links utilization " + std::to_string(util_used) +
                  "% != stored " +
                  std::to_string(expected.utilization_used_links_percent) +
                  "%");
    }
  }
  return checks;
}

}  // namespace netloc::verify
