// Shared plumbing for the verify check implementations.
#pragma once

#include <string>
#include <utility>

#include "netloc/lint/diagnostic.hpp"
#include "netloc/lint/registry.hpp"

namespace netloc::verify {

/// Caps identical-rule emission per check call: a corrupt artifact can
/// violate one invariant at thousands of sites, and the first few say
/// everything. The counter is per Emitter (i.e. per check invocation).
class Emitter {
 public:
  static constexpr int kMaxPerRule = 16;

  Emitter(lint::LintReport& report, std::string source)
      : report_(report), source_(std::move(source)) {}

  /// Emit rule `id` at `index` unless its cap is exhausted.
  void emit(const char* id, long index, std::string message,
            std::string fixit = {}) {
    int* count = nullptr;
    for (auto& [rule, n] : counts_) {
      if (rule == id) count = &n;
    }
    if (count == nullptr) {
      counts_.emplace_back(id, 0);
      count = &counts_.back().second;
    }
    if (++*count > kMaxPerRule) return;
    report_.add(lint::RuleRegistry::instance().make(
        id, {source_, -1, index}, std::move(message), std::move(fixit)));
  }

 private:
  lint::LintReport& report_;
  std::string source_;
  std::vector<std::pair<std::string, int>> counts_;
};

/// 1e-9 relative tolerance for recomputed doubles (integers compare
/// exactly; both sides run the same FP operations in the same order,
/// so the slack only covers harmless reassociation).
[[nodiscard]] inline bool nearly_equal(double a, double b) {
  const double scale = std::max({1.0, a < 0 ? -a : a, b < 0 ? -b : b});
  const double diff = a - b;
  return (diff < 0 ? -diff : diff) <= 1e-9 * scale;
}

}  // namespace netloc::verify
