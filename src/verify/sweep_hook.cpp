#include "netloc/verify/sweep_hook.hpp"

#include <optional>
#include <string>

#include "netloc/mapping/placement.hpp"
#include "netloc/verify/context.hpp"

namespace netloc::verify {

engine::CellVerifier make_cell_verifier(CellVerifyOptions options) {
  return [options](const engine::CellArtifacts& cell) -> lint::LintReport {
    VerifyContext ctx;
    ctx.topology = cell.topology;
    ctx.plan = cell.plan;
    ctx.traffic = cell.full_matrix;
    ctx.duration = cell.duration;
    ctx.expected = cell.result;
    ctx.window_traffic = cell.windowed;
    ctx.run = cell.run;
    ctx.max_pairs = options.max_pairs;
    ctx.source =
        (cell.entry != nullptr ? cell.entry->label() + " " : std::string()) +
        (cell.topology != nullptr ? cell.topology->name()
                                  : std::string("cell"));
    // Under a hierarchical machine the sweep packs ranks blocked; the
    // placement pass re-checks that view and the collective schedule.
    std::optional<mapping::Placement> placement;
    if (!cell.run.machine.is_flat() && cell.full_matrix != nullptr) {
      const int ranks = cell.full_matrix->num_ranks();
      const int cores = cell.run.machine.cores_per_node();
      placement = mapping::Placement::blocked(
          ranks, (ranks + cores - 1) / cores, cell.run.machine);
      ctx.placement = &*placement;
    }
    const VerifyRunner runner;
    PassFilter filter;
    filter.ids = {"graph",   "routes",  "ecmp",      "faults",
                  "metrics", "traffic", "placement", "congestion"};
    const VerifyReport result = runner.run(ctx, filter);
    lint::LintReport filtered;
    // Bind merged() before iterating: the range-for would otherwise
    // walk a vector inside a destroyed temporary (C++20 does not
    // lifetime-extend through the .diagnostics() member call).
    const lint::LintReport merged = result.merged();
    for (const auto& diagnostic : merged.diagnostics()) {
      if (diagnostic.severity >= options.min_severity) {
        filtered.add(diagnostic);
      }
    }
    return filtered;
  };
}

}  // namespace netloc::verify
