#include "netloc/serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace netloc::serve {

namespace {

const char* type_name(Json::Type type) {
  switch (type) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "bool";
    case Json::Type::Number: return "number";
    case Json::Type::String: return "string";
    case Json::Type::Array: return "array";
    case Json::Type::Object: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  throw JsonError(std::string("JSON value is ") + type_name(got) + ", not " +
                  wanted);
}

/// Recursive-descent parser over a bounded string_view. The frame layer
/// caps input size; `depth` caps nesting.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      throw JsonError("trailing characters after JSON document at offset " +
                      std::to_string(pos_));
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw JsonError(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxJsonDepth) fail("JSON nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') return obj;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') return arr;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // \uXXXX -> UTF-8. Surrogate pairs are not recombined (the
          // protocol never emits them); lone surrogates are rejected.
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          if (code >= 0xD800 && code <= 0xDFFF) fail("lone surrogate escape");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6U)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12U)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3FU)));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    if (!std::isfinite(value)) {
      pos_ = start;
      fail("non-finite number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double value, std::string& out) {
  // Integers (the common case: counts, ids, link lists) print without
  // an exponent or trailing zeros so payloads stay readable and
  // byte-stable; everything else gets round-trip precision.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  out += buf;
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const std::vector<Json>& Json::as_array() const {
  if (type_ != Type::Array) type_error("array", type_);
  return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::as_object() const {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) type_error("object", type_);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw JsonError("missing JSON key '" + std::string(key) + "'");
  }
  return *value;
}

std::string Json::get_string(std::string_view key, std::string fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_string() : std::move(fallback);
}

double Json::get_number(std::string_view key, double fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_number() : fallback;
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_bool() : fallback;
}

void Json::push(Json value) {
  if (type_ != Type::Array) type_error("array", type_);
  array_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  if (type_ != Type::Object) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::Null: out = "null"; break;
    case Type::Bool: out = bool_ ? "true" : "false"; break;
    case Type::Number: dump_number(number_, out); break;
    case Type::String: dump_string(string_, out); break;
    case Type::Array: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += array_[i].dump();
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        dump_string(object_[i].first, out);
        out.push_back(':');
        out += object_[i].second.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

}  // namespace netloc::serve
