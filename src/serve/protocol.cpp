#include "netloc/serve/protocol.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace netloc::serve {

namespace {

/// Bounds protocol integers: a number field must be an integer in
/// [min, max] or the request is rejected.
std::int64_t int_field(const Json& object, std::string_view key,
                       std::int64_t fallback, std::int64_t min,
                       std::int64_t max) {
  const Json* value = object.find(key);
  if (value == nullptr) return fallback;
  const double number = value->as_number();
  if (number != std::floor(number) || number < static_cast<double>(min) ||
      number > static_cast<double>(max)) {
    throw ProtocolError("field '" + std::string(key) +
                        "' out of range or not an integer");
  }
  return static_cast<std::int64_t>(number);
}

SubmitRequest parse_submit(const Json& object) {
  SubmitRequest submit;
  if (const Json* apps = object.find("apps"); apps != nullptr) {
    for (const Json& app : apps->as_array()) {
      submit.apps.push_back(app.as_string());
    }
  }
  // Seeds are full uint64; they ride as a decimal string to survive the
  // double-typed JSON number space.
  if (const Json* seed = object.find("seed"); seed != nullptr) {
    if (seed->is_string()) {
      try {
        submit.seed = std::stoull(seed->as_string());
      } catch (const std::exception&) {
        throw ProtocolError("field 'seed' is not a decimal uint64 string");
      }
    } else {
      submit.seed = static_cast<std::uint64_t>(
          int_field(object, "seed", 0, 0, (1LL << 53)));
    }
  }
  if (const Json* routing = object.find("routing"); routing != nullptr) {
    try {
      submit.routing.kind = topology::parse_routing_kind(routing->as_string());
    } catch (const ConfigError& e) {
      throw ProtocolError(e.what());
    }
  }
  if (const Json* links = object.find("fail_links"); links != nullptr) {
    for (const Json& link : links->as_array()) {
      const double id = link.as_number();
      if (id != std::floor(id) || id < 0 || id > 1e9) {
        throw ProtocolError("field 'fail_links' holds a non-integer or "
                            "out-of-range link id");
      }
      submit.routing.failed_links.push_back(static_cast<LinkId>(id));
    }
  }
  if (const Json* machine = object.find("machine"); machine != nullptr) {
    try {
      submit.machine = mapping::MachineModel::parse(machine->as_string());
    } catch (const ConfigError& e) {
      throw ProtocolError(e.what());
    }
  }
  if (const Json* algo = object.find("collectives"); algo != nullptr) {
    try {
      submit.collective_algo =
          collectives::parse_collective_algo(algo->as_string());
    } catch (const ConfigError& e) {
      throw ProtocolError(e.what());
    }
  }
  submit.congestion.windows = static_cast<int>(
      int_field(object, "congestion_windows", 0, 0, 1 << 20));
  if (const Json* threshold = object.find("congestion_threshold");
      threshold != nullptr) {
    const double value = threshold->as_number();
    if (!(value > 0.0) || value > 1e9) {
      throw ProtocolError("field 'congestion_threshold' must be a positive "
                          "offered-load fraction");
    }
    submit.congestion.threshold = value;
  }
  submit.congestion.top_k = static_cast<int>(int_field(
      object, "congestion_top_k", submit.congestion.top_k, 1, 1 << 20));
  submit.priority = static_cast<int>(
      int_field(object, "priority", 0, -1000000, 1000000));
  submit.detach = object.get_bool("detach", false);
  submit.progress = object.get_bool("progress", false);
  return submit;
}

}  // namespace

Request parse_request(const std::string& payload) {
  const Json object = Json::parse(payload);
  if (!object.is_object()) {
    throw ProtocolError("request frame is not a JSON object");
  }
  const std::string type = object.get_string("type");
  Request request;
  if (type == "ping") {
    request.kind = Request::Kind::Ping;
  } else if (type == "submit") {
    request.kind = Request::Kind::Submit;
    request.submit = parse_submit(object);
  } else if (type == "status") {
    request.kind = Request::Kind::Status;
  } else if (type == "watch" || type == "cancel") {
    request.kind =
        type == "watch" ? Request::Kind::Watch : Request::Kind::Cancel;
    request.job = object.get_string("job");
    (void)parse_job_key(request.job);  // Validate early.
  } else if (type == "shutdown") {
    request.kind = Request::Kind::Shutdown;
  } else {
    throw ProtocolError("unknown request type '" + type + "'");
  }
  return request;
}

std::string encode_request(const Request& request) {
  Json object = Json::object();
  switch (request.kind) {
    case Request::Kind::Ping:
      object.set("type", "ping");
      break;
    case Request::Kind::Status:
      object.set("type", "status");
      break;
    case Request::Kind::Shutdown:
      object.set("type", "shutdown");
      break;
    case Request::Kind::Watch:
    case Request::Kind::Cancel:
      object.set("type",
                 request.kind == Request::Kind::Watch ? "watch" : "cancel");
      object.set("job", request.job);
      break;
    case Request::Kind::Submit: {
      const SubmitRequest& submit = request.submit;
      object.set("type", "submit");
      Json apps = Json::array();
      for (const auto& app : submit.apps) apps.push(app);
      object.set("apps", std::move(apps));
      object.set("seed", std::to_string(submit.seed));
      object.set("routing", topology::to_string(submit.routing.kind));
      if (!submit.routing.failed_links.empty()) {
        Json links = Json::array();
        for (const LinkId link : submit.routing.failed_links) {
          links.push(static_cast<double>(link));
        }
        object.set("fail_links", std::move(links));
      }
      if (!submit.machine.is_flat()) {
        object.set("machine", submit.machine.label());
      }
      if (submit.collective_algo != collectives::CollectiveAlgo::Flat) {
        object.set("collectives",
                   std::string(collectives::to_string(submit.collective_algo)));
      }
      if (submit.congestion.enabled()) {
        object.set("congestion_windows", submit.congestion.windows);
        object.set("congestion_threshold", submit.congestion.threshold);
        object.set("congestion_top_k", submit.congestion.top_k);
      }
      if (submit.priority != 0) object.set("priority", submit.priority);
      if (submit.detach) object.set("detach", true);
      if (submit.progress) object.set("progress", true);
      break;
    }
  }
  return object.dump();
}

std::string format_job_key(std::uint64_t key) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << key;
  return out.str();
}

std::uint64_t parse_job_key(const std::string& text) {
  if (text.size() != 16) {
    throw ProtocolError("job key must be 16 hex digits, got '" + text + "'");
  }
  std::uint64_t key = 0;
  for (const char c : text) {
    key <<= 4U;
    if (c >= '0' && c <= '9') key |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') key |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') key |= static_cast<std::uint64_t>(c - 'A' + 10);
    else throw ProtocolError("job key holds a non-hex digit: '" + text + "'");
  }
  return key;
}

std::string encode_pong() {
  Json object = Json::object();
  object.set("type", "pong");
  return object.dump();
}

std::string encode_ok(const std::string& what) {
  Json object = Json::object();
  object.set("type", "ok");
  object.set("what", what);
  return object.dump();
}

std::string encode_error(const std::string& message) {
  Json object = Json::object();
  object.set("type", "error");
  object.set("message", message);
  return object.dump();
}

std::string encode_accepted(std::uint64_t job, const std::string& label,
                            bool coalesced, const std::string& state) {
  Json object = Json::object();
  object.set("type", "accepted");
  object.set("job", format_job_key(job));
  object.set("label", label);
  object.set("coalesced", coalesced);
  object.set("state", state);
  return object.dump();
}

std::string encode_event(const std::string& kind, std::uint64_t job,
                         const std::string& label, const std::string& detail) {
  Json object = Json::object();
  object.set("type", "event");
  object.set("kind", kind);
  object.set("job", format_job_key(job));
  object.set("label", label);
  if (!detail.empty()) object.set("detail", detail);
  return object.dump();
}

std::string encode_result(const ResultFrame& result) {
  Json object = Json::object();
  object.set("type", "result");
  object.set("job", format_job_key(result.job));
  object.set("state", result.state);
  if (!result.error.empty()) object.set("error", result.error);
  object.set("rows", result.rows);
  object.set("cache_hits", result.cache_hits);
  object.set("jobs_run", result.jobs_run);
  object.set("wall_s", result.wall_s);
  if (!result.csv.empty()) object.set("csv", result.csv);
  return object.dump();
}

}  // namespace netloc::serve
