#include "netloc/serve/socket.hpp"

#if !defined(_WIN32)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace netloc::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw ConfigError("socket path must be 1.." +
                      std::to_string(sizeof(addr.sun_path) - 1) +
                      " bytes: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// ByteChannel over a connected stream-socket fd.
class FdChannel final : public ByteChannel {
 public:
  explicit FdChannel(int fd) : fd_(fd) {}
  ~FdChannel() override { FdChannel::close(); }

  std::size_t read_some(char* data, std::size_t size) override {
    while (true) {
      const ssize_t n = ::recv(fd_.load(), data, size, 0);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      // A reset peer is stream end, not an internal error: the frame
      // layer reports a mid-frame cut as FrameFormatError.
      if (errno == ECONNRESET || errno == EBADF) return 0;
      throw_errno("socket read");
    }
  }

  void write_all(const char* data, std::size_t size) override {
    std::size_t sent = 0;
    while (sent < size) {
      // MSG_NOSIGNAL: a vanished client must surface as an exception
      // in the writing thread, not SIGPIPE the daemon.
      const ssize_t n =
          ::send(fd_.load(), data + sent, size - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw Error("socket write failed (peer closed?): " +
                    std::string(std::strerror(errno)));
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  void close() override {
    const int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);  // Unblock any reader in another thread.
      ::close(fd);
    }
  }

 private:
  std::atomic<int> fd_;
};

class UnixListener final : public Listener {
 public:
  explicit UnixListener(const std::string& path) : path_(path) {
    const sockaddr_un addr = make_address(path);

    // A leftover socket file is only stale if nothing answers it.
    if (std::filesystem::exists(path)) {
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (probe >= 0) {
        const bool live =
            ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0;
        ::close(probe);
        if (live) {
          throw ConfigError("socket " + path +
                            " already has a live daemon listening");
        }
      }
      ::unlink(path.c_str());
    }

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(listen_fd_);
      errno = saved;
      throw_errno("bind " + path);
    }
    if (::listen(listen_fd_, 64) != 0) {
      const int saved = errno;
      ::close(listen_fd_);
      ::unlink(path.c_str());
      errno = saved;
      throw_errno("listen " + path);
    }
    if (::pipe(wake_pipe_) != 0) {
      const int saved = errno;
      ::close(listen_fd_);
      ::unlink(path.c_str());
      errno = saved;
      throw_errno("pipe");
    }
  }

  ~UnixListener() override {
    UnixListener::shutdown();
    ::close(listen_fd_);
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    ::unlink(path_.c_str());
  }

  std::unique_ptr<ByteChannel> accept() override {
    while (!shut_down_.load()) {
      pollfd fds[2];
      fds[0] = {listen_fd_, POLLIN, 0};
      fds[1] = {wake_pipe_[0], POLLIN, 0};
      const int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll");
      }
      if ((fds[1].revents & POLLIN) != 0 || shut_down_.load()) break;
      if ((fds[0].revents & POLLIN) == 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        throw_errno("accept");
      }
      return std::make_unique<FdChannel>(fd);
    }
    return nullptr;
  }

  // Only async-signal-safe operations: an atomic store and one
  // write(2). A SIGTERM handler calls this directly.
  void shutdown() override {
    shut_down_.store(true);
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }

 private:
  std::string path_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shut_down_{false};
};

}  // namespace

std::unique_ptr<Listener> listen_unix(const std::string& path) {
  return std::make_unique<UnixListener>(path);
}

std::unique_ptr<ByteChannel> connect_unix(const std::string& path) {
  const sockaddr_un addr = make_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    throw Error("cannot connect to " + path + ": " + std::strerror(saved) +
                " (is netloc_serve running?)");
  }
  return std::make_unique<FdChannel>(fd);
}

bool unix_sockets_available() { return true; }

}  // namespace netloc::serve

#else  // _WIN32

namespace netloc::serve {

std::unique_ptr<Listener> listen_unix(const std::string&) {
  throw ConfigError("unix-domain sockets unavailable on this platform");
}

std::unique_ptr<ByteChannel> connect_unix(const std::string&) {
  throw ConfigError("unix-domain sockets unavailable on this platform");
}

bool unix_sockets_available() { return false; }

}  // namespace netloc::serve

#endif
