#include "netloc/serve/job_queue.hpp"

#include <algorithm>

#include "netloc/common/binary_io.hpp"
#include "netloc/common/error.hpp"
#include "netloc/engine/result_cache.hpp"

namespace netloc::serve {

JobKey JobSpec::key() const {
  Fnv1aKey key;
  key.mix(std::string("netloc-serve-job"));
  key.mix<std::uint64_t>(entries.size());
  for (const auto& entry : entries) {
    // The per-entry result-cache key already hashes everything that
    // determines the entry's row (workload id + calibration targets,
    // seed, Table 2 parameters, metric options, routing policy), so
    // the job key inherits the cache's invalidation semantics.
    key.mix<std::uint64_t>(engine::result_cache_key(entry, run).hash);
  }
  return key.value();
}

std::string JobSpec::label() const {
  if (entries.empty()) return "(empty)";
  std::string label = entries.front().label();
  if (entries.size() > 1) {
    label += " +" + std::to_string(entries.size() - 1) + " more";
  }
  return label;
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

JobQueue::Ticket JobQueue::submit(JobSpec spec, int priority,
                                  Subscription subscription) {
  const JobKey key = spec.key();
  common::MutexLock lock(mutex_);
  if (closed_) throw Error("job queue: submit after shutdown");
  ++stats_.submitted;

  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    // Identical in-flight job: attach, never enqueue a second
    // computation. Priority boosts apply — an urgent duplicate pulls
    // the shared job forward rather than queue-jumping it.
    JobPtr& job = it->second;
    ++stats_.coalesced;
    if (job->state == JobState::Queued && priority > job->priority) {
      job->priority = priority;
    }
    if (subscription.subscriber != nullptr) {
      job->subscribers.push_back(std::move(subscription));
    }
    return Ticket{key, job->label, true, job->state};
  }

  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->key = key;
  job->label = job->spec.label();
  job->priority = priority;
  job->seq = next_seq_++;
  if (subscription.subscriber != nullptr) {
    job->subscribers.push_back(std::move(subscription));
  }
  queued_.push_back(job);
  inflight_.emplace(key, job);
  stats_.depth = static_cast<int>(queued_.size());
  cv_.notify_all();
  return Ticket{key, job->label, false, JobState::Queued};
}

bool JobQueue::watch(JobKey key, const Subscription& subscription) {
  JobPtr replay;
  {
    common::MutexLock lock(mutex_);
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      if (subscription.subscriber != nullptr) {
        it->second->subscribers.push_back(subscription);
      }
      return true;
    }
    for (auto it = retained_.rbegin(); it != retained_.rend(); ++it) {
      if ((*it)->key == key) {
        replay = *it;
        break;
      }
    }
  }
  if (replay == nullptr) return false;
  if (subscription.subscriber != nullptr) {
    subscription.subscriber->on_job_result(replay->key, replay->label,
                                           replay->outcome);
  }
  return true;
}

bool JobQueue::cancel(JobKey key) {
  JobPtr job;
  {
    common::MutexLock lock(mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end() || it->second->state != JobState::Queued) {
      return false;  // Unknown, or already running: cannot interrupt.
    }
    job = it->second;
    inflight_.erase(it);
    queued_.erase(std::find(queued_.begin(), queued_.end(), job));
    stats_.depth = static_cast<int>(queued_.size());
    ++stats_.cancelled;
    job->state = JobState::Cancelled;
    job->outcome.state = JobState::Cancelled;
    job->outcome.error = "cancelled before execution";
    retained_.push_back(job);
    if (retained_.size() > kRetainedJobs) retained_.pop_front();
  }
  deliver(job->subscribers, job->key, job->label, job->outcome);
  return true;
}

void JobQueue::detach(const JobSubscriber* subscriber) {
  common::MutexLock lock(mutex_);
  for (auto& [key, job] : inflight_) {
    auto& subs = job->subscribers;
    subs.erase(std::remove_if(subs.begin(), subs.end(),
                              [subscriber](const Subscription& s) {
                                return s.subscriber.get() == subscriber;
                              }),
               subs.end());
  }
}

JobQueue::JobPtr* JobQueue::best_queued() {
  JobPtr* best = nullptr;
  for (JobPtr& job : queued_) {
    if (best == nullptr || job->priority > (*best)->priority ||
        (job->priority == (*best)->priority && job->seq < (*best)->seq)) {
      best = &job;
    }
  }
  return best;
}

std::optional<JobQueue::Work> JobQueue::take_next() {
  common::MutexLock lock(mutex_);
  // close() clears paused_, so this terminates for every
  // pause/close interleaving.
  while (paused_ || (queued_.empty() && !closed_)) cv_.wait(mutex_);
  if (queued_.empty()) return std::nullopt;  // Closed and drained.
  JobPtr* slot = best_queued();
  JobPtr job = *slot;
  queued_.erase(queued_.begin() + (slot - queued_.data()));
  stats_.depth = static_cast<int>(queued_.size());
  job->state = JobState::Running;
  ++stats_.executed;
  stats_.running = job->label;
  return Work{job->key, job->label, job->spec};
}

void JobQueue::publish_event(JobKey key, const std::string& kind,
                             const std::string& label,
                             const std::string& detail) {
  std::vector<Subscription> subscribers;
  {
    common::MutexLock lock(mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    subscribers = it->second->subscribers;  // Copy: callbacks can block.
  }
  for (const Subscription& sub : subscribers) {
    if (sub.progress && sub.subscriber != nullptr) {
      sub.subscriber->on_job_event(key, kind, label, detail);
    }
  }
}

void JobQueue::finish(JobKey key, JobOutcome outcome) {
  JobPtr job;
  std::vector<Subscription> subscribers;
  {
    common::MutexLock lock(mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    job = it->second;
    inflight_.erase(it);
    job->state = outcome.state;
    job->outcome = std::move(outcome);
    subscribers = std::move(job->subscribers);
    job->subscribers.clear();
    if (job->outcome.state == JobState::Failed) {
      ++stats_.failed;
    } else {
      ++stats_.done;
    }
    stats_.running.clear();
    retained_.push_back(job);
    if (retained_.size() > kRetainedJobs) retained_.pop_front();
  }
  deliver(subscribers, job->key, job->label, job->outcome);
}

void JobQueue::deliver(const std::vector<Subscription>& subscribers,
                       JobKey key, const std::string& label,
                       const JobOutcome& outcome) {
  for (const Subscription& sub : subscribers) {
    if (sub.subscriber != nullptr) {
      sub.subscriber->on_job_result(key, label, outcome);
    }
  }
}

void JobQueue::pause() {
  common::MutexLock lock(mutex_);
  if (closed_) return;  // A closed queue must keep draining.
  paused_ = true;
}

void JobQueue::resume() {
  common::MutexLock lock(mutex_);
  paused_ = false;
  cv_.notify_all();
}

void JobQueue::close() {
  common::MutexLock lock(mutex_);
  closed_ = true;
  paused_ = false;  // A paused, closed queue must still drain.
  cv_.notify_all();
}

QueueStats JobQueue::stats() const {
  common::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace netloc::serve
