#include "netloc/serve/transport.hpp"

#include <cstring>
#include <deque>
#include <vector>

#include "netloc/common/thread_annotations.hpp"

namespace netloc::serve {

// ---- framing ---------------------------------------------------------------

namespace {

/// Read exactly `size` bytes. Returns false on EOF before the first
/// byte (clean stream end); throws FrameFormatError on EOF after at
/// least one byte (`what` names the partial record).
bool read_exact(ByteChannel& channel, char* data, std::size_t size,
                const char* what) {
  std::size_t got = 0;
  while (got < size) {
    const std::size_t n = channel.read_some(data + got, size - got);
    if (n == 0) {
      if (got == 0) return false;
      throw FrameFormatError(std::string("connection closed mid-frame while "
                                         "reading ") +
                             what);
    }
    got += n;
  }
  return true;
}

}  // namespace

std::optional<std::string> read_frame(ByteChannel& channel) {
  char header[4];
  if (!read_exact(channel, header, sizeof(header), "frame length")) {
    return std::nullopt;  // Clean EOF at a frame boundary.
  }
  std::uint32_t length = 0;
  std::memcpy(&length, header, sizeof(length));
  if (length == 0) {
    throw FrameFormatError("empty frame (zero-length payload)");
  }
  // Validate before allocating: a hostile 4 GiB length field must cost
  // nothing.
  if (length > kMaxFrameBytes) {
    throw FrameFormatError("frame length " + std::to_string(length) +
                           " exceeds the " + std::to_string(kMaxFrameBytes) +
                           "-byte cap");
  }
  std::string payload(length, '\0');
  if (!read_exact(channel, payload.data(), payload.size(), "frame payload")) {
    throw FrameFormatError("connection closed mid-frame while reading "
                           "frame payload");
  }
  return payload;
}

void write_frame(ByteChannel& channel, std::string_view payload) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) {
    throw FrameFormatError("refusing to send a frame of " +
                           std::to_string(payload.size()) + " bytes");
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  char header[4];
  std::memcpy(header, &length, sizeof(length));
  channel.write_all(header, sizeof(header));
  channel.write_all(payload.data(), payload.size());
}

// ---- in-process channels ---------------------------------------------------

namespace {

/// One direction of an in-process connection: a byte queue with
/// blocking reads and close semantics. Writers fail once closed;
/// readers drain the buffer first, then see EOF.
class ByteQueue {
 public:
  std::size_t read_some(char* data, std::size_t size) {
    common::MutexLock lock(mutex_);
    while (bytes_.empty() && !closed_) cv_.wait(mutex_);
    if (bytes_.empty()) return 0;  // Closed and drained: EOF.
    std::size_t n = 0;
    while (n < size && !bytes_.empty()) {
      data[n++] = bytes_.front();
      bytes_.pop_front();
    }
    return n;
  }

  void write_all(const char* data, std::size_t size) {
    common::MutexLock lock(mutex_);
    if (closed_) throw Error("in-process channel: peer closed");
    bytes_.insert(bytes_.end(), data, data + size);
    cv_.notify_all();
  }

  void close() {
    common::MutexLock lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }

 private:
  common::Mutex mutex_;
  common::CondVar cv_;
  std::deque<char> bytes_ NETLOC_GUARDED_BY(mutex_);
  bool closed_ NETLOC_GUARDED_BY(mutex_) = false;
};

/// Endpoint over two shared queues (rx from the peer, tx to it).
class PipeChannel final : public ByteChannel {
 public:
  PipeChannel(std::shared_ptr<ByteQueue> rx, std::shared_ptr<ByteQueue> tx)
      : rx_(std::move(rx)), tx_(std::move(tx)) {}

  ~PipeChannel() override { PipeChannel::close(); }

  std::size_t read_some(char* data, std::size_t size) override {
    return rx_->read_some(data, size);
  }

  void write_all(const char* data, std::size_t size) override {
    tx_->write_all(data, size);
  }

  void close() override {
    // Close both directions: our reader unblocks with EOF and the
    // peer's reader drains whatever we already sent, then sees EOF.
    rx_->close();
    tx_->close();
  }

 private:
  std::shared_ptr<ByteQueue> rx_;
  std::shared_ptr<ByteQueue> tx_;
};

}  // namespace

std::pair<std::unique_ptr<ByteChannel>, std::unique_ptr<ByteChannel>>
make_channel_pair() {
  auto a_to_b = std::make_shared<ByteQueue>();
  auto b_to_a = std::make_shared<ByteQueue>();
  return {std::make_unique<PipeChannel>(b_to_a, a_to_b),
          std::make_unique<PipeChannel>(a_to_b, b_to_a)};
}

// ---- in-process listener ---------------------------------------------------

struct InProcessListener::State {
  common::Mutex mutex;
  common::CondVar cv;
  std::deque<std::unique_ptr<ByteChannel>> pending NETLOC_GUARDED_BY(mutex);
  bool shut_down NETLOC_GUARDED_BY(mutex) = false;
};

InProcessListener::InProcessListener() : state_(std::make_shared<State>()) {}

InProcessListener::~InProcessListener() { InProcessListener::shutdown(); }

std::unique_ptr<ByteChannel> InProcessListener::connect() {
  auto [client, server] = make_channel_pair();
  {
    common::MutexLock lock(state_->mutex);
    if (state_->shut_down) {
      throw Error("in-process listener: connect after shutdown");
    }
    state_->pending.push_back(std::move(server));
    state_->cv.notify_all();
  }
  return std::move(client);
}

std::unique_ptr<ByteChannel> InProcessListener::accept() {
  common::MutexLock lock(state_->mutex);
  while (state_->pending.empty() && !state_->shut_down) {
    state_->cv.wait(state_->mutex);
  }
  if (state_->pending.empty()) return nullptr;  // Shut down.
  auto channel = std::move(state_->pending.front());
  state_->pending.pop_front();
  return channel;
}

void InProcessListener::shutdown() {
  common::MutexLock lock(state_->mutex);
  state_->shut_down = true;
  // Connections queued but never accepted would leave their clients
  // blocked forever; close them now.
  for (auto& channel : state_->pending) channel->close();
  state_->pending.clear();
  state_->cv.notify_all();
}

}  // namespace netloc::serve
