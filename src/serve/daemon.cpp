#include "netloc/serve/daemon.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "netloc/analysis/export.hpp"
#include "netloc/verify/sweep_hook.hpp"
#include "netloc/workloads/catalog.hpp"

namespace netloc::serve {

namespace {

/// Expand "AMG" (every entry of the app) / "AMG/216" (one rank count,
/// all variants) selectors into catalog entries, preserving request
/// order. Empty = the whole catalog.
std::vector<workloads::CatalogEntry> resolve_selectors(
    const std::vector<std::string>& selectors) {
  if (selectors.empty()) return workloads::catalog();
  std::vector<workloads::CatalogEntry> entries;
  for (const auto& selector : selectors) {
    const auto slash = selector.find('/');
    const std::string app =
        slash == std::string::npos ? selector : selector.substr(0, slash);
    const auto app_entries = workloads::catalog_for(app);
    if (app_entries.empty()) {
      throw ProtocolError("unknown application '" + app + "'");
    }
    if (slash == std::string::npos) {
      entries.insert(entries.end(), app_entries.begin(), app_entries.end());
      continue;
    }
    int ranks = 0;
    try {
      std::size_t used = 0;
      ranks = std::stoi(selector.substr(slash + 1), &used);
      if (used != selector.size() - slash - 1) throw ProtocolError("");
    } catch (const std::exception&) {
      throw ProtocolError("bad selector '" + selector +
                          "' (want APP or APP/RANKS)");
    }
    bool matched = false;
    for (const auto& entry : app_entries) {
      if (entry.ranks == ranks) {
        entries.push_back(entry);
        matched = true;
      }
    }
    if (!matched) {
      throw ProtocolError("no catalog entry " + app + "/" +
                          std::to_string(ranks));
    }
  }
  return entries;
}

}  // namespace

// ---- Session ---------------------------------------------------------------

/// One connected client. The session thread reads requests; the
/// executor thread delivers events and results through the
/// JobSubscriber side. The write mutex keeps the two interleaving at
/// frame granularity, never mid-frame.
class Daemon::Session final : public JobSubscriber,
                              public std::enable_shared_from_this<Session> {
 public:
  explicit Session(std::unique_ptr<ByteChannel> channel)
      : channel_(std::move(channel)) {}

  [[nodiscard]] ByteChannel& channel() { return *channel_; }

  /// Write one frame. Peer-gone errors are swallowed: the session loop
  /// notices the dead connection on its next read and detaches.
  void send(const std::string& payload) {
    common::MutexLock lock(write_mutex_);
    try {
      write_frame(*channel_, payload);
    } catch (const Error&) {
    }
  }

  void close() { channel_->close(); }

  void on_job_event(JobKey key, const std::string& kind,
                    const std::string& label,
                    const std::string& detail) override {
    send(encode_event(kind, key, label, detail));
  }

  void on_job_result(JobKey key, const std::string& /*label*/,
                     const JobOutcome& outcome) override {
    ResultFrame frame;
    frame.job = key;
    frame.state = to_string(outcome.state);
    frame.error = outcome.error;
    frame.rows = outcome.rows;
    frame.cache_hits = outcome.cache_hits;
    frame.jobs_run = outcome.jobs_run;
    frame.wall_s = outcome.wall_s;
    frame.csv = outcome.csv;
    send(encode_result(frame));
  }

 private:
  std::unique_ptr<ByteChannel> channel_;
  common::Mutex write_mutex_;
};

// ---- ObserverBridge --------------------------------------------------------

/// Forwards engine telemetry (worker threads) into the running job's
/// event stream. The executor publishes which job is current; with a
/// serial executor there is at most one.
class Daemon::ObserverBridge final : public engine::EngineObserver {
 public:
  explicit ObserverBridge(JobQueue& queue) : queue_(queue) {}

  void set_current(JobKey key) { current_.store(key); }
  [[nodiscard]] std::int64_t lock_contentions() const {
    return contentions_.load();
  }

  void on_job_started(const engine::JobEvent& job) override {
    publish("job_started", job.label, job.phase);
  }
  void on_job_finished(const engine::JobEvent& job,
                       Seconds /*elapsed*/) override {
    publish("job_finished", job.label, job.phase);
  }
  void on_cache_hit(const std::string& label) override {
    publish("cache_hit", label, "");
  }
  void on_cache_store(const std::string& label) override {
    publish("cache_store", label, "");
  }
  void on_cache_evict(const std::string& file, std::uint64_t bytes) override {
    publish("cache_evict", file, std::to_string(bytes) + " bytes");
  }
  void on_diagnostic(const lint::Diagnostic& diagnostic) override {
    if (diagnostic.rule_id == "EN004") ++contentions_;
    publish("diagnostic", diagnostic.rule_id, diagnostic.message);
  }

 private:
  void publish(const char* kind, const std::string& label,
               const std::string& detail) {
    const JobKey key = current_.load();
    if (key != 0) queue_.publish_event(key, kind, label, detail);
  }

  JobQueue& queue_;
  std::atomic<JobKey> current_{0};
  std::atomic<std::int64_t> contentions_{0};
};

// ---- Daemon ----------------------------------------------------------------

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      bridge_(std::make_unique<ObserverBridge>(queue_)) {}

Daemon::~Daemon() = default;

engine::SweepEngine& Daemon::engine_for(const analysis::RunOptions& run) {
  std::string key = std::to_string(run.seed);
  key += run.link_accounting ? "+links" : "-links";
  if (!run.routing.is_default()) key += " @" + run.routing.label();
  if (!run.machine.is_flat()) key += " m" + run.machine.label();
  if (run.collective_algo != collectives::CollectiveAlgo::Flat) {
    key += " c" + std::string(collectives::to_string(run.collective_algo));
  }
  if (run.congestion.enabled()) {
    key += " w" + std::to_string(run.congestion.windows) + "/" +
           std::to_string(run.congestion.threshold) + "/" +
           std::to_string(run.congestion.top_k);
  }
  common::MutexLock lock(engines_mutex_);
  auto& slot = engines_[key];
  if (slot == nullptr) {
    engine::SweepOptions sweep;
    sweep.run = run;
    sweep.jobs = options_.jobs;
    sweep.cache_dir = options_.cache_dir;
    sweep.cache_max_bytes = options_.cache_max_bytes;
    sweep.observer = bridge_.get();
    if (options_.verify) sweep.post_cell_verify = verify::make_cell_verifier();
    slot = std::make_unique<engine::SweepEngine>(std::move(sweep));
    log_line("engine created for run options [" + key + "]");
  }
  return *slot;
}

void Daemon::executor_loop() {
  while (auto work = queue_.take_next()) run_job(*work);
}

void Daemon::run_job(const JobQueue::Work& work) {
  bridge_->set_current(work.key);
  queue_.publish_event(work.key, "job_running", work.label, "");
  JobOutcome outcome;
  try {
    engine::SweepEngine& engine = engine_for(work.spec.run);
    const auto rows = engine.run_rows(work.spec.entries);
    const engine::SweepStats& stats = engine.stats();
    std::ostringstream csv;
    analysis::write_table3_csv(rows, csv);
    outcome.state = JobState::Done;
    outcome.csv = csv.str();
    outcome.rows = static_cast<int>(rows.size());
    outcome.cache_hits = stats.cache_hits;
    outcome.jobs_run = stats.jobs_run;
    outcome.wall_s = stats.wall_s;
  } catch (const std::exception& e) {
    outcome.state = JobState::Failed;
    outcome.error = e.what();
  }
  bridge_->set_current(0);
  log_line("job " + format_job_key(work.key) + " (" + work.label + ") " +
           to_string(outcome.state));
  queue_.finish(work.key, std::move(outcome));
}

void Daemon::serve(Listener& listener) {
  listener_.store(&listener);
  // shutdown() before serve(): honor it now that we hold the listener.
  if (shutdown_requested_.load()) listener.shutdown();
  std::thread executor([this] { executor_loop(); });

  while (auto channel = listener.accept()) {
    auto session = std::make_shared<Session>(std::move(channel));
    common::MutexLock lock(sessions_mutex_);
    ++connections_;
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session = std::move(session)] { session_loop(session); });
  }
  listener_.store(nullptr);
  log_line("draining: queue closed, finishing accepted jobs");

  // Drain contract: reject new submissions, run every accepted job to
  // completion (results reach still-connected subscribers), only then
  // tear the sessions down.
  queue_.close();
  executor.join();

  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<std::thread> threads;
  {
    common::MutexLock lock(sessions_mutex_);
    sessions = sessions_;
    threads = std::move(session_threads_);
    session_threads_.clear();
  }
  for (const auto& session : sessions) session->close();
  for (auto& thread : threads) thread.join();
  {
    common::MutexLock lock(sessions_mutex_);
    sessions_.clear();
  }
  log_line("drained; serve() returning");
}

void Daemon::shutdown() {
  shutdown_requested_.store(true);
  if (Listener* listener = listener_.load()) listener->shutdown();
}

void Daemon::session_loop(std::shared_ptr<Session> session) {
  bool keep = true;
  while (keep) {
    std::optional<std::string> payload;
    try {
      payload = read_frame(session->channel());
    } catch (const FrameFormatError& e) {
      // Best-effort: the peer that sent garbage may already be gone.
      session->send(encode_error(std::string("bad frame: ") + e.what()));
      break;
    } catch (const Error&) {
      break;  // Channel torn down under the reader (drain).
    }
    if (!payload) break;  // Clean EOF at a frame boundary.
    try {
      keep = handle_request(*session, parse_request(*payload));
    } catch (const JsonError& e) {
      session->send(encode_error(std::string("payload is not JSON: ") +
                                 e.what()));
    } catch (const ProtocolError& e) {
      session->send(encode_error(e.what()));
    }
  }
  // The client may still be subscribed to in-flight jobs; detach so
  // the executor never writes to a dead connection.
  queue_.detach(session.get());
  session->close();
}

bool Daemon::handle_request(Session& session, const Request& request) {
  switch (request.kind) {
    case Request::Kind::Ping:
      session.send(encode_pong());
      return true;
    case Request::Kind::Submit:
      handle_submit(session, request.submit);
      return true;
    case Request::Kind::Status:
      session.send(status_frame());
      return true;
    case Request::Kind::Watch: {
      const JobKey key = parse_job_key(request.job);
      // Known job: events/result flow (a retained result replays
      // immediately). Unknown: error frame — retention is bounded, old
      // results live on in the on-disk cache, resubmit to get them.
      if (!queue_.watch(key, {session.shared_from_this(), true})) {
        session.send(encode_error("unknown job " + request.job));
      }
      return true;
    }
    case Request::Kind::Cancel: {
      const JobKey key = parse_job_key(request.job);
      if (queue_.cancel(key)) {
        session.send(encode_ok("cancel"));
      } else {
        session.send(encode_error("job " + request.job +
                                  " is not queued (unknown, running or "
                                  "already finished)"));
      }
      return true;
    }
    case Request::Kind::Shutdown:
      session.send(encode_ok("shutdown"));
      log_line("shutdown requested by a client");
      shutdown();
      return false;
  }
  return true;
}

void Daemon::handle_submit(Session& session, const SubmitRequest& submit) {
  JobSpec spec;
  try {
    spec.entries = resolve_selectors(submit.apps);
  } catch (const Error& e) {  // ProtocolError or catalog ConfigError.
    session.send(encode_error(e.what()));
    return;
  }
  spec.run.seed = submit.seed;
  spec.run.routing = submit.routing;
  spec.run.machine = submit.machine;
  spec.run.collective_algo = submit.collective_algo;
  spec.run.congestion = submit.congestion;

  Subscription subscription;
  if (!submit.detach) {
    subscription.subscriber = session.shared_from_this();
    subscription.progress = submit.progress;
  }
  JobQueue::Ticket ticket;
  try {
    ticket = queue_.submit(std::move(spec), submit.priority,
                           std::move(subscription));
  } catch (const Error&) {
    session.send(encode_error("daemon is draining; submission rejected"));
    return;
  }
  log_line("accepted job " + format_job_key(ticket.key) + " (" + ticket.label +
           (ticket.coalesced ? ", coalesced)" : ")"));
  session.send(encode_accepted(ticket.key, ticket.label, ticket.coalesced,
                               to_string(ticket.state)));
}

DaemonStats Daemon::stats() {
  DaemonStats stats;
  stats.queue = queue_.stats();
  {
    common::MutexLock lock(engines_mutex_);
    stats.engines = static_cast<std::int64_t>(engines_.size());
    for (const auto& [key, engine] : engines_) {
      const auto life = engine->lifetime_stats();
      stats.lifetime.sweeps += life.sweeps;
      stats.lifetime.cells += life.cells;
      stats.lifetime.cache_hits += life.cache_hits;
      stats.lifetime.jobs_run += life.jobs_run;
      stats.lifetime.plans_built += life.plans_built;
      stats.lifetime.cache_evictions += life.cache_evictions;
      stats.lifetime.verify_findings += life.verify_findings;
      stats.lifetime.wall_s += life.wall_s;
    }
  }
  {
    common::MutexLock lock(sessions_mutex_);
    stats.connections = connections_;
  }
  stats.cache_lock_contentions = bridge_->lock_contentions();
  return stats;
}

std::string Daemon::status_frame() {
  const DaemonStats stats = this->stats();
  Json object = Json::object();
  object.set("type", "status");

  Json queue = Json::object();
  queue.set("submitted", static_cast<double>(stats.queue.submitted));
  queue.set("coalesced", static_cast<double>(stats.queue.coalesced));
  queue.set("executed", static_cast<double>(stats.queue.executed));
  queue.set("done", static_cast<double>(stats.queue.done));
  queue.set("failed", static_cast<double>(stats.queue.failed));
  queue.set("cancelled", static_cast<double>(stats.queue.cancelled));
  queue.set("depth", stats.queue.depth);
  if (!stats.queue.running.empty()) queue.set("running", stats.queue.running);
  object.set("queue", std::move(queue));

  Json lifetime = Json::object();
  lifetime.set("sweeps", static_cast<double>(stats.lifetime.sweeps));
  lifetime.set("cells", static_cast<double>(stats.lifetime.cells));
  lifetime.set("cache_hits", static_cast<double>(stats.lifetime.cache_hits));
  lifetime.set("jobs_run", static_cast<double>(stats.lifetime.jobs_run));
  lifetime.set("plans_built", static_cast<double>(stats.lifetime.plans_built));
  lifetime.set("cache_evictions",
               static_cast<double>(stats.lifetime.cache_evictions));
  lifetime.set("verify_findings",
               static_cast<double>(stats.lifetime.verify_findings));
  lifetime.set("wall_s", stats.lifetime.wall_s);
  object.set("lifetime", std::move(lifetime));

  object.set("connections", static_cast<double>(stats.connections));
  object.set("engines", static_cast<double>(stats.engines));
  object.set("cache_lock_contentions",
             static_cast<double>(stats.cache_lock_contentions));
  if (!options_.cache_dir.empty()) object.set("cache_dir", options_.cache_dir);
  return object.dump();
}

void Daemon::log_line(const std::string& line) {
  if (options_.log == nullptr) return;
  common::MutexLock lock(log_mutex_);
  (*options_.log) << "[netloc_serve] " << line << '\n';
  options_.log->flush();
}

}  // namespace netloc::serve
