#include "netloc/serve/client.hpp"

#include <utility>

namespace netloc::serve {

Client::Client(std::unique_ptr<ByteChannel> channel)
    : channel_(std::move(channel)) {
  if (channel_ == nullptr) throw Error("Client: null channel");
}

Json Client::read_response() {
  auto payload = read_frame(*channel_);
  if (!payload) {
    throw Error("serve client: daemon closed the connection");
  }
  return Json::parse(*payload);
}

Json Client::request(const Request& request) {
  write_frame(*channel_, encode_request(request));
  return read_response();
}

Json Client::wait_terminal(bool accepted_is_terminal,
                           const EventHandler& on_event) {
  for (;;) {
    Json frame = read_response();
    const std::string type = frame.get_string("type");
    if (type == "result" || type == "error") return frame;
    if (type == "accepted" && accepted_is_terminal) return frame;
    if (on_event) on_event(frame);
  }
}

Json Client::submit_and_wait(const SubmitRequest& submit,
                             const EventHandler& on_event) {
  Request request;
  request.kind = Request::Kind::Submit;
  request.submit = submit;
  write_frame(*channel_, encode_request(request));
  return wait_terminal(/*accepted_is_terminal=*/submit.detach, on_event);
}

Json Client::watch_and_wait(const std::string& job,
                            const EventHandler& on_event) {
  Request request;
  request.kind = Request::Kind::Watch;
  request.job = job;
  write_frame(*channel_, encode_request(request));
  return wait_terminal(/*accepted_is_terminal=*/false, on_event);
}

Json Client::status() {
  Request request;
  request.kind = Request::Kind::Status;
  return this->request(request);
}

bool Client::ping() {
  Request request;
  request.kind = Request::Kind::Ping;
  return this->request(request).get_string("type") == "pong";
}

Json Client::shutdown() {
  Request request;
  request.kind = Request::Kind::Shutdown;
  return this->request(request);
}

void Client::close() { channel_->close(); }

}  // namespace netloc::serve
