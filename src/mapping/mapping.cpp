#include "netloc/mapping/mapping.hpp"

#include <algorithm>
#include <numeric>

#include "netloc/common/error.hpp"
#include "netloc/common/prng.hpp"

namespace netloc::mapping {

Mapping::Mapping(std::vector<NodeId> rank_to_node, int num_nodes)
    : rank_to_node_(std::move(rank_to_node)), num_nodes_(num_nodes) {
  if (num_nodes_ < 1) throw ConfigError("Mapping: num_nodes must be >= 1");
  if (rank_to_node_.empty()) throw ConfigError("Mapping: no ranks");
  for (const NodeId node : rank_to_node_) {
    if (node < 0 || node >= num_nodes_) {
      throw ConfigError("Mapping: node " + std::to_string(node) +
                        " out of range [0, " + std::to_string(num_nodes_) + ")");
    }
  }
}

int Mapping::max_ranks_per_node() const {
  std::vector<int> count(static_cast<std::size_t>(num_nodes_), 0);
  for (const NodeId node : rank_to_node_) ++count[static_cast<std::size_t>(node)];
  return *std::max_element(count.begin(), count.end());
}

Mapping Mapping::linear(int num_ranks, int num_nodes) {
  if (num_ranks > num_nodes) {
    throw ConfigError("Mapping::linear: more ranks than nodes");
  }
  std::vector<NodeId> assign(static_cast<std::size_t>(num_ranks));
  std::iota(assign.begin(), assign.end(), 0);
  return Mapping(std::move(assign), num_nodes);
}

Mapping Mapping::blocked(int num_ranks, int num_nodes, int ranks_per_node) {
  if (ranks_per_node < 1) {
    throw ConfigError("Mapping::blocked: ranks_per_node must be >= 1");
  }
  const int needed = (num_ranks + ranks_per_node - 1) / ranks_per_node;
  if (needed > num_nodes) {
    throw ConfigError("Mapping::blocked: not enough nodes");
  }
  std::vector<NodeId> assign(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    assign[static_cast<std::size_t>(r)] = r / ranks_per_node;
  }
  return Mapping(std::move(assign), num_nodes);
}

Mapping Mapping::round_robin(int num_ranks, int num_nodes) {
  std::vector<NodeId> assign(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    assign[static_cast<std::size_t>(r)] = r % num_nodes;
  }
  return Mapping(std::move(assign), num_nodes);
}

Mapping Mapping::random(int num_ranks, int num_nodes, std::uint64_t seed) {
  if (num_ranks > num_nodes) {
    throw ConfigError("Mapping::random: more ranks than nodes");
  }
  std::vector<NodeId> nodes(static_cast<std::size_t>(num_nodes));
  std::iota(nodes.begin(), nodes.end(), 0);
  Xoshiro256 rng(seed);
  // Fisher-Yates over the prefix we need.
  for (int i = 0; i < num_ranks; ++i) {
    const auto j = static_cast<std::size_t>(
        i + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_nodes - i))));
    std::swap(nodes[static_cast<std::size_t>(i)], nodes[j]);
  }
  nodes.resize(static_cast<std::size_t>(num_ranks));
  return Mapping(std::move(nodes), num_nodes);
}

}  // namespace netloc::mapping
