#include "netloc/mapping/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "netloc/common/error.hpp"

namespace netloc::mapping {

namespace {

/// Parse "<node>[:<socket>:<core>]" strictly. Missing coordinates
/// default to 0 (a v1-style entry inside a v2 file is legal).
PlaceCoord parse_coord(const std::string& text) {
  PlaceCoord coord;
  const auto c1 = text.find(':');
  if (c1 == std::string::npos) {
    coord.node = std::stoi(text);
    return coord;
  }
  const auto c2 = text.find(':', c1 + 1);
  if (c2 == std::string::npos) throw Error("expected <node>:<socket>:<core>");
  coord.node = std::stoi(text.substr(0, c1));
  coord.socket = std::stoi(text.substr(c1 + 1, c2 - c1 - 1));
  coord.core = std::stoi(text.substr(c2 + 1));
  return coord;
}

}  // namespace

void write_rankfile(const Mapping& mapping, std::ostream& out) {
  out << "# netloc rankfile: rank -> node placement\n";
  out << "nodes " << mapping.num_nodes() << '\n';
  for (Rank r = 0; r < mapping.num_ranks(); ++r) {
    out << "rank " << r << '=' << mapping.node_of(r) << '\n';
  }
}

void write_rankfile(const Placement& placement, std::ostream& out) {
  out << "# netloc rankfile v2: rank -> node:socket:core placement\n";
  out << "version 2\n";
  out << "machine " << placement.machine().label() << '\n';
  out << "nodes " << placement.num_nodes() << '\n';
  for (Rank r = 0; r < placement.num_ranks(); ++r) {
    const PlaceCoord& c = placement.coord_of(r);
    out << "rank " << r << '=' << c.node << ':' << c.socket << ':' << c.core
        << '\n';
  }
}

Mapping read_rankfile(std::istream& in) {
  int num_nodes = -1;
  std::vector<NodeId> assign;
  std::vector<bool> seen;
  std::string line;
  std::size_t line_no = 0;

  auto fail = [&](const std::string& why) -> Error {
    return Error("rankfile line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "nodes") {
      if (!(ls >> num_nodes) || num_nodes < 1) throw fail("invalid node count");
    } else if (keyword == "rank") {
      if (num_nodes < 0) throw fail("rank entry before the nodes header");
      std::string entry;
      ls >> entry;
      const auto eq = entry.find('=');
      if (eq == std::string::npos) throw fail("expected rank <r>=<node>");
      int rank = -1;
      NodeId node = kInvalidNode;
      try {
        rank = std::stoi(entry.substr(0, eq));
        node = std::stoi(entry.substr(eq + 1));
      } catch (...) {
        throw fail("unparseable rank entry '" + entry + "'");
      }
      if (rank < 0) throw fail("negative rank");
      if (node < 0 || node >= num_nodes) throw fail("node out of range");
      if (static_cast<std::size_t>(rank) >= assign.size()) {
        assign.resize(static_cast<std::size_t>(rank) + 1, kInvalidNode);
        seen.resize(assign.size(), false);
      }
      if (seen[static_cast<std::size_t>(rank)]) {
        throw fail("duplicate rank " + std::to_string(rank));
      }
      seen[static_cast<std::size_t>(rank)] = true;
      assign[static_cast<std::size_t>(rank)] = node;
    } else {
      throw fail("unknown keyword '" + keyword + "'");
    }
  }
  if (num_nodes < 0) throw Error("rankfile: missing nodes header");
  if (assign.empty()) throw Error("rankfile: no rank entries");
  for (std::size_t r = 0; r < assign.size(); ++r) {
    if (!seen[r]) throw Error("rankfile: rank " + std::to_string(r) + " missing");
  }
  return Mapping(std::move(assign), num_nodes);
}

Placement read_placement(std::istream& in) {
  // Buffer the stream once so version detection does not depend on
  // seekability (read_placement accepts pipes and stringstreams alike).
  std::ostringstream buffered;
  buffered << in.rdbuf();
  const std::string content = buffered.str();

  // v2 iff a `version` header appears before any other keyword.
  bool v2 = false;
  {
    std::istringstream scan(content);
    std::string line;
    while (std::getline(scan, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string keyword;
      ls >> keyword;
      v2 = keyword == "version";
      break;
    }
  }

  if (!v2) {
    std::istringstream v1(content);
    Mapping mapping = read_rankfile(v1);
    // Lift losslessly: the degenerate model wide enough for the
    // mapping's fullest node hosts every v1 file.
    return Placement::from_mapping(
        mapping, MachineModel::degenerate(mapping.max_ranks_per_node()));
  }

  int version = -1;
  int num_nodes = -1;
  MachineModel machine;
  bool machine_seen = false;
  std::vector<PlaceCoord> coords;
  std::vector<bool> seen;
  std::string line;
  std::size_t line_no = 0;
  std::istringstream stream(content);

  auto fail = [&](const std::string& why) -> Error {
    return Error("rankfile line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "version") {
      if (!(ls >> version) || version != 2) {
        throw fail("unsupported rankfile version (this reader knows 1 and 2)");
      }
    } else if (keyword == "machine") {
      std::string spec;
      if (!(ls >> spec)) throw fail("missing machine spec");
      machine = MachineModel::parse(spec);
      machine_seen = true;
    } else if (keyword == "nodes") {
      if (!(ls >> num_nodes) || num_nodes < 1) throw fail("invalid node count");
    } else if (keyword == "rank") {
      if (num_nodes < 0) throw fail("rank entry before the nodes header");
      if (!machine_seen) throw fail("rank entry before the machine header");
      std::string entry;
      ls >> entry;
      const auto eq = entry.find('=');
      if (eq == std::string::npos) {
        throw fail("expected rank <r>=<node>:<socket>:<core>");
      }
      int rank = -1;
      PlaceCoord coord;
      try {
        rank = std::stoi(entry.substr(0, eq));
        coord = parse_coord(entry.substr(eq + 1));
      } catch (...) {
        throw fail("unparseable rank entry '" + entry + "'");
      }
      if (rank < 0) throw fail("negative rank");
      if (static_cast<std::size_t>(rank) >= coords.size()) {
        coords.resize(static_cast<std::size_t>(rank) + 1);
        seen.resize(coords.size(), false);
      }
      if (seen[static_cast<std::size_t>(rank)]) {
        throw fail("duplicate rank " + std::to_string(rank));
      }
      seen[static_cast<std::size_t>(rank)] = true;
      coords[static_cast<std::size_t>(rank)] = coord;
    } else {
      throw fail("unknown keyword '" + keyword + "'");
    }
  }
  if (num_nodes < 0) throw Error("rankfile: missing nodes header");
  if (coords.empty()) throw Error("rankfile: no rank entries");
  for (std::size_t r = 0; r < coords.size(); ++r) {
    if (!seen[r]) throw Error("rankfile: rank " + std::to_string(r) + " missing");
  }
  // The Placement constructor range-checks every coordinate against
  // `machine` and [0, num_nodes).
  return {std::move(coords), num_nodes, machine};
}

RawRankfile read_rankfile_raw(std::istream& in) {
  RawRankfile raw;
  std::string line;
  long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "nodes") {
      if (!(ls >> raw.num_nodes)) raw.malformed_lines.push_back(line_no);
    } else if (keyword == "version") {
      if (!(ls >> raw.version)) raw.malformed_lines.push_back(line_no);
    } else if (keyword == "machine") {
      if (!(ls >> raw.machine_spec)) raw.malformed_lines.push_back(line_no);
    } else if (keyword == "rank") {
      std::string entry;
      ls >> entry;
      const auto eq = entry.find('=');
      long rank = -1;
      long node = kInvalidNode;
      bool parsed = eq != std::string::npos;
      if (parsed) {
        try {
          rank = std::stol(entry.substr(0, eq));
          // Keep only the node part of a v2 <node>:<socket>:<core>
          // entry — the flat lint rules reason about nodes.
          std::string node_text = entry.substr(eq + 1);
          if (const auto colon = node_text.find(':');
              colon != std::string::npos) {
            node_text.resize(colon);
          }
          node = std::stol(node_text);
        } catch (...) {
          parsed = false;
        }
      }
      if (!parsed || rank < 0) {
        raw.malformed_lines.push_back(line_no);
        continue;
      }
      if (static_cast<std::size_t>(rank) >= raw.rank_to_node.size()) {
        raw.rank_to_node.resize(static_cast<std::size_t>(rank) + 1,
                                kInvalidNode);
      }
      auto& slot = raw.rank_to_node[static_cast<std::size_t>(rank)];
      if (slot != kInvalidNode) {
        raw.duplicate_ranks.push_back(static_cast<Rank>(rank));
      }
      slot = static_cast<NodeId>(node);
    } else {
      raw.malformed_lines.push_back(line_no);
    }
  }
  return raw;
}

}  // namespace netloc::mapping
