#include "netloc/mapping/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "netloc/common/error.hpp"

namespace netloc::mapping {

void write_rankfile(const Mapping& mapping, std::ostream& out) {
  out << "# netloc rankfile: rank -> node placement\n";
  out << "nodes " << mapping.num_nodes() << '\n';
  for (Rank r = 0; r < mapping.num_ranks(); ++r) {
    out << "rank " << r << '=' << mapping.node_of(r) << '\n';
  }
}

Mapping read_rankfile(std::istream& in) {
  int num_nodes = -1;
  std::vector<NodeId> assign;
  std::vector<bool> seen;
  std::string line;
  std::size_t line_no = 0;

  auto fail = [&](const std::string& why) -> Error {
    return Error("rankfile line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "nodes") {
      if (!(ls >> num_nodes) || num_nodes < 1) throw fail("invalid node count");
    } else if (keyword == "rank") {
      if (num_nodes < 0) throw fail("rank entry before the nodes header");
      std::string entry;
      ls >> entry;
      const auto eq = entry.find('=');
      if (eq == std::string::npos) throw fail("expected rank <r>=<node>");
      int rank = -1;
      NodeId node = kInvalidNode;
      try {
        rank = std::stoi(entry.substr(0, eq));
        node = std::stoi(entry.substr(eq + 1));
      } catch (...) {
        throw fail("unparseable rank entry '" + entry + "'");
      }
      if (rank < 0) throw fail("negative rank");
      if (node < 0 || node >= num_nodes) throw fail("node out of range");
      if (static_cast<std::size_t>(rank) >= assign.size()) {
        assign.resize(static_cast<std::size_t>(rank) + 1, kInvalidNode);
        seen.resize(assign.size(), false);
      }
      if (seen[static_cast<std::size_t>(rank)]) {
        throw fail("duplicate rank " + std::to_string(rank));
      }
      seen[static_cast<std::size_t>(rank)] = true;
      assign[static_cast<std::size_t>(rank)] = node;
    } else {
      throw fail("unknown keyword '" + keyword + "'");
    }
  }
  if (num_nodes < 0) throw Error("rankfile: missing nodes header");
  if (assign.empty()) throw Error("rankfile: no rank entries");
  for (std::size_t r = 0; r < assign.size(); ++r) {
    if (!seen[r]) throw Error("rankfile: rank " + std::to_string(r) + " missing");
  }
  return Mapping(std::move(assign), num_nodes);
}

RawRankfile read_rankfile_raw(std::istream& in) {
  RawRankfile raw;
  std::string line;
  long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "nodes") {
      if (!(ls >> raw.num_nodes)) raw.malformed_lines.push_back(line_no);
    } else if (keyword == "rank") {
      std::string entry;
      ls >> entry;
      const auto eq = entry.find('=');
      long rank = -1;
      long node = kInvalidNode;
      bool parsed = eq != std::string::npos;
      if (parsed) {
        try {
          rank = std::stol(entry.substr(0, eq));
          node = std::stol(entry.substr(eq + 1));
        } catch (...) {
          parsed = false;
        }
      }
      if (!parsed || rank < 0) {
        raw.malformed_lines.push_back(line_no);
        continue;
      }
      if (static_cast<std::size_t>(rank) >= raw.rank_to_node.size()) {
        raw.rank_to_node.resize(static_cast<std::size_t>(rank) + 1,
                                kInvalidNode);
      }
      auto& slot = raw.rank_to_node[static_cast<std::size_t>(rank)];
      if (slot != kInvalidNode) {
        raw.duplicate_ranks.push_back(static_cast<Rank>(rank));
      }
      slot = static_cast<NodeId>(node);
    } else {
      raw.malformed_lines.push_back(line_no);
    }
  }
  return raw;
}

}  // namespace netloc::mapping
