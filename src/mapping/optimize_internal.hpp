// Shared internals of the mapping optimizers (greedy construction in
// optimizer.cpp, recursive bisection in bisection.cpp): demand
// adjacency, plan validation and the pairwise-swap refinement both
// optimizers polish their placements with.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "netloc/common/error.hpp"
#include "netloc/mapping/optimizer.hpp"
#include "netloc/topology/route_plan.hpp"
#include "netloc/topology/topology.hpp"

namespace netloc::mapping::internal {

/// Validate a caller-supplied plan, or build a throwaway tableless one
/// (statically-dispatched distances, no precomputed table).
inline std::shared_ptr<const topology::RoutePlan> ensure_plan(
    const topology::Topology& topo, const topology::RoutePlan*& plan,
    const char* where) {
  if (plan == nullptr) {
    auto local = topology::RoutePlan::build(topo, 0);
    plan = local.get();
    return local;
  }
  if (plan->num_nodes() != topo.num_nodes()) {
    throw ConfigError(std::string(where) +
                      ": route plan does not match topology");
  }
  return nullptr;
}

/// Symmetric adjacency built from the directed demands: per rank, its
/// partners with combined (both-direction) weights.
struct AdjacencyList {
  std::vector<std::vector<std::pair<Rank, double>>> partners;
  std::vector<double> total_weight;

  explicit AdjacencyList(std::span<const TrafficEdge> edges, int num_ranks) {
    partners.resize(static_cast<std::size_t>(num_ranks));
    total_weight.assign(static_cast<std::size_t>(num_ranks), 0.0);
    // Accumulate symmetric weights through a temporary dense pass per
    // source to merge parallel edges.
    for (const auto& e : edges) {
      if (e.src == e.dst || e.weight <= 0.0) continue;
      partners[static_cast<std::size_t>(e.src)].emplace_back(e.dst, e.weight);
      partners[static_cast<std::size_t>(e.dst)].emplace_back(e.src, e.weight);
      total_weight[static_cast<std::size_t>(e.src)] += e.weight;
      total_weight[static_cast<std::size_t>(e.dst)] += e.weight;
    }
    for (auto& list : partners) {
      std::sort(list.begin(), list.end());
      // Merge duplicates (a->b and b->a demands, repeated edges).
      std::size_t out = 0;
      for (std::size_t i = 0; i < list.size();) {
        std::size_t j = i;
        double sum = 0.0;
        while (j < list.size() && list[j].first == list[i].first) {
          sum += list[j].second;
          ++j;
        }
        list[out++] = {list[i].first, sum};
        i = j;
      }
      list.resize(out);
    }
  }

  /// Merged symmetric weight between `a` and `b` (0 when unrelated).
  [[nodiscard]] double weight_between(Rank a, Rank b) const {
    const auto& list = partners[static_cast<std::size_t>(a)];
    const auto it = std::lower_bound(
        list.begin(), list.end(), b,
        [](const std::pair<Rank, double>& entry, Rank rank) {
          return entry.first < rank;
        });
    return (it != list.end() && it->first == b) ? it->second : 0.0;
  }
};

/// Pairwise-swap hill climbing over a rank -> node table: each round
/// tries swapping every rank pair's nodes and keeps improving swaps.
/// `rounds` >= 0 runs at most that many rounds (stopping early once a
/// round finds nothing); rounds < 0 runs to convergence, capped at
/// kMaxConvergenceRounds. Each round is O(R^2 * partners). The loop
/// body is byte-for-byte the refinement greedy_optimize always ran, so
/// greedy results are unchanged by the extraction.
inline constexpr int kMaxConvergenceRounds = 64;

inline void refine_pairwise_swaps(std::vector<NodeId>& assign,
                                  const AdjacencyList& adj,
                                  const topology::RoutePlan& plan, int rounds) {
  const int num_ranks = static_cast<int>(assign.size());
  const int limit = rounds < 0 ? kMaxConvergenceRounds : rounds;
  auto rank_cost = [&](Rank r, const std::vector<NodeId>& a) {
    double cost = 0.0;
    for (const auto& [peer, weight] : adj.partners[static_cast<std::size_t>(r)]) {
      if (peer == r) continue;
      cost += weight * plan.hop_distance(a[static_cast<std::size_t>(r)],
                                         a[static_cast<std::size_t>(peer)]);
    }
    return cost;
  };
  for (int round = 0; round < limit; ++round) {
    bool improved = false;
    for (Rank i = 0; i < num_ranks; ++i) {
      for (Rank j = i + 1; j < num_ranks; ++j) {
        const double before = rank_cost(i, assign) + rank_cost(j, assign);
        std::swap(assign[static_cast<std::size_t>(i)],
                  assign[static_cast<std::size_t>(j)]);
        const double after = rank_cost(i, assign) + rank_cost(j, assign);
        if (after + 1e-12 < before) {
          improved = true;
        } else {
          std::swap(assign[static_cast<std::size_t>(i)],
                    assign[static_cast<std::size_t>(j)]);
        }
      }
    }
    if (!improved) break;
  }
}

}  // namespace netloc::mapping::internal
