#include "netloc/mapping/optimizer.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "netloc/common/error.hpp"

namespace netloc::mapping {

namespace {

/// Validate a caller-supplied plan, or build a throwaway tableless one
/// (statically-dispatched distances, no precomputed table).
std::shared_ptr<const topology::RoutePlan> ensure_plan(
    const topology::Topology& topo, const topology::RoutePlan*& plan,
    const char* where) {
  if (plan == nullptr) {
    auto local = topology::RoutePlan::build(topo, 0);
    plan = local.get();
    return local;
  }
  if (plan->num_nodes() != topo.num_nodes()) {
    throw ConfigError(std::string(where) +
                      ": route plan does not match topology");
  }
  return nullptr;
}

/// Symmetric adjacency built from the directed demands: per rank, its
/// partners with combined (both-direction) weights.
struct AdjacencyList {
  std::vector<std::vector<std::pair<Rank, double>>> partners;
  std::vector<double> total_weight;

  explicit AdjacencyList(std::span<const TrafficEdge> edges, int num_ranks) {
    partners.resize(static_cast<std::size_t>(num_ranks));
    total_weight.assign(static_cast<std::size_t>(num_ranks), 0.0);
    // Accumulate symmetric weights through a temporary dense pass per
    // source to merge parallel edges.
    for (const auto& e : edges) {
      if (e.src == e.dst || e.weight <= 0.0) continue;
      partners[static_cast<std::size_t>(e.src)].emplace_back(e.dst, e.weight);
      partners[static_cast<std::size_t>(e.dst)].emplace_back(e.src, e.weight);
      total_weight[static_cast<std::size_t>(e.src)] += e.weight;
      total_weight[static_cast<std::size_t>(e.dst)] += e.weight;
    }
    for (auto& list : partners) {
      std::sort(list.begin(), list.end());
      // Merge duplicates (a->b and b->a demands, repeated edges).
      std::size_t out = 0;
      for (std::size_t i = 0; i < list.size();) {
        std::size_t j = i;
        double sum = 0.0;
        while (j < list.size() && list[j].first == list[i].first) {
          sum += list[j].second;
          ++j;
        }
        list[out++] = {list[i].first, sum};
        i = j;
      }
      list.resize(out);
    }
  }
};

}  // namespace

double weighted_hop_cost(std::span<const TrafficEdge> edges,
                         const topology::Topology& topo, const Mapping& mapping,
                         const topology::RoutePlan* plan) {
  const auto local = ensure_plan(topo, plan, "weighted_hop_cost");
  double cost = 0.0;
  for (const auto& e : edges) {
    if (e.src == e.dst) continue;
    cost += e.weight *
            plan->hop_distance(mapping.node_of(e.src), mapping.node_of(e.dst));
  }
  return cost;
}

Mapping greedy_optimize(std::span<const TrafficEdge> edges, int num_ranks,
                        const topology::Topology& topo,
                        const GreedyOptions& options,
                        const topology::RoutePlan* plan) {
  if (num_ranks < 1) throw ConfigError("greedy_optimize: num_ranks must be >= 1");
  if (topo.num_nodes() < num_ranks) {
    throw ConfigError("greedy_optimize: topology smaller than rank count");
  }
  const auto local_plan = ensure_plan(topo, plan, "greedy_optimize");
  const AdjacencyList adj(edges, num_ranks);
  const int num_nodes = topo.num_nodes();

  std::vector<NodeId> assign(static_cast<std::size_t>(num_ranks), kInvalidNode);
  std::vector<bool> node_used(static_cast<std::size_t>(num_nodes), false);
  std::vector<bool> placed(static_cast<std::size_t>(num_ranks), false);
  // Attachment of each unplaced rank to the placed set.
  std::vector<double> attachment(static_cast<std::size_t>(num_ranks), 0.0);

  auto place = [&](Rank rank, NodeId node) {
    assign[static_cast<std::size_t>(rank)] = node;
    node_used[static_cast<std::size_t>(node)] = true;
    placed[static_cast<std::size_t>(rank)] = true;
    for (const auto& [peer, weight] : adj.partners[static_cast<std::size_t>(rank)]) {
      if (!placed[static_cast<std::size_t>(peer)]) {
        attachment[static_cast<std::size_t>(peer)] += weight;
      }
    }
  };

  // Seed: the rank with the highest total traffic goes to node 0.
  Rank seed = 0;
  for (Rank r = 1; r < num_ranks; ++r) {
    if (adj.total_weight[static_cast<std::size_t>(r)] >
        adj.total_weight[static_cast<std::size_t>(seed)]) {
      seed = r;
    }
  }
  place(seed, 0);

  for (int step = 1; step < num_ranks; ++step) {
    // Next rank: strongest attachment to the placed set; ties towards
    // the lower rank id to stay deterministic. Isolated ranks (no
    // placed partners) are picked last, in id order.
    Rank next = -1;
    for (Rank r = 0; r < num_ranks; ++r) {
      if (placed[static_cast<std::size_t>(r)]) continue;
      if (next < 0 ||
          attachment[static_cast<std::size_t>(r)] > attachment[static_cast<std::size_t>(next)]) {
        next = r;
      }
    }

    // Best free node: minimal weighted hop cost to placed partners.
    NodeId best_node = kInvalidNode;
    double best_cost = std::numeric_limits<double>::infinity();
    int scanned = 0;
    for (NodeId node = 0; node < num_nodes && scanned < options.max_candidates;
         ++node) {
      if (node_used[static_cast<std::size_t>(node)]) continue;
      ++scanned;
      double cost = 0.0;
      for (const auto& [peer, weight] : adj.partners[static_cast<std::size_t>(next)]) {
        if (!placed[static_cast<std::size_t>(peer)]) continue;
        cost += weight * plan->hop_distance(node, assign[static_cast<std::size_t>(peer)]);
        if (cost >= best_cost) break;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_node = node;
      }
    }
    place(next, best_node);
  }

  Mapping mapping(std::move(assign), num_nodes);

  // Pairwise-swap refinement: try swapping every pair of placed ranks;
  // keep improving swaps. Each round is O(R^2 * partners).
  for (int round = 0; round < options.refinement_rounds; ++round) {
    auto current = mapping.raw();
    bool improved = false;
    auto rank_cost = [&](Rank r, const std::vector<NodeId>& a) {
      double cost = 0.0;
      for (const auto& [peer, weight] : adj.partners[static_cast<std::size_t>(r)]) {
        if (peer == r) continue;
        cost += weight * plan->hop_distance(a[static_cast<std::size_t>(r)],
                                            a[static_cast<std::size_t>(peer)]);
      }
      return cost;
    };
    for (Rank i = 0; i < num_ranks; ++i) {
      for (Rank j = i + 1; j < num_ranks; ++j) {
        const double before = rank_cost(i, current) + rank_cost(j, current);
        std::swap(current[static_cast<std::size_t>(i)], current[static_cast<std::size_t>(j)]);
        const double after = rank_cost(i, current) + rank_cost(j, current);
        if (after + 1e-12 < before) {
          improved = true;
        } else {
          std::swap(current[static_cast<std::size_t>(i)],
                    current[static_cast<std::size_t>(j)]);
        }
      }
    }
    mapping = Mapping(std::move(current), num_nodes);
    if (!improved) break;
  }
  return mapping;
}

}  // namespace netloc::mapping
