#include "netloc/mapping/optimizer.hpp"

#include <limits>
#include <memory>
#include <vector>

#include "netloc/common/error.hpp"
#include "optimize_internal.hpp"

namespace netloc::mapping {

using internal::AdjacencyList;
using internal::ensure_plan;

double weighted_hop_cost(std::span<const TrafficEdge> edges,
                         const topology::Topology& topo, const Mapping& mapping,
                         const topology::RoutePlan* plan) {
  const auto local = ensure_plan(topo, plan, "weighted_hop_cost");
  double cost = 0.0;
  for (const auto& e : edges) {
    if (e.src == e.dst) continue;
    cost += e.weight *
            plan->hop_distance(mapping.node_of(e.src), mapping.node_of(e.dst));
  }
  return cost;
}

Mapping greedy_optimize(std::span<const TrafficEdge> edges, int num_ranks,
                        const topology::Topology& topo,
                        const GreedyOptions& options,
                        const topology::RoutePlan* plan) {
  if (num_ranks < 1) throw ConfigError("greedy_optimize: num_ranks must be >= 1");
  if (topo.num_nodes() < num_ranks) {
    throw ConfigError("greedy_optimize: topology smaller than rank count");
  }
  if (options.max_candidates.has_value() && *options.max_candidates < 1) {
    throw ConfigError(
        "greedy_optimize: max_candidates must be >= 1 when set (leave it "
        "unset to scan every free node)");
  }
  const int max_candidates =
      options.max_candidates.value_or(std::numeric_limits<int>::max());
  const auto local_plan = ensure_plan(topo, plan, "greedy_optimize");
  const AdjacencyList adj(edges, num_ranks);
  const int num_nodes = topo.num_nodes();

  std::vector<NodeId> assign(static_cast<std::size_t>(num_ranks), kInvalidNode);
  std::vector<bool> node_used(static_cast<std::size_t>(num_nodes), false);
  std::vector<bool> placed(static_cast<std::size_t>(num_ranks), false);
  // Attachment of each unplaced rank to the placed set.
  std::vector<double> attachment(static_cast<std::size_t>(num_ranks), 0.0);

  auto place = [&](Rank rank, NodeId node) {
    assign[static_cast<std::size_t>(rank)] = node;
    node_used[static_cast<std::size_t>(node)] = true;
    placed[static_cast<std::size_t>(rank)] = true;
    for (const auto& [peer, weight] : adj.partners[static_cast<std::size_t>(rank)]) {
      if (!placed[static_cast<std::size_t>(peer)]) {
        attachment[static_cast<std::size_t>(peer)] += weight;
      }
    }
  };

  // Seed: the rank with the highest total traffic goes to node 0.
  Rank seed = 0;
  for (Rank r = 1; r < num_ranks; ++r) {
    if (adj.total_weight[static_cast<std::size_t>(r)] >
        adj.total_weight[static_cast<std::size_t>(seed)]) {
      seed = r;
    }
  }
  place(seed, 0);

  for (int step = 1; step < num_ranks; ++step) {
    // Next rank: strongest attachment to the placed set; ties towards
    // the lower rank id to stay deterministic. Isolated ranks (no
    // placed partners) are picked last, in id order.
    Rank next = -1;
    for (Rank r = 0; r < num_ranks; ++r) {
      if (placed[static_cast<std::size_t>(r)]) continue;
      if (next < 0 ||
          attachment[static_cast<std::size_t>(r)] > attachment[static_cast<std::size_t>(next)]) {
        next = r;
      }
    }

    // Best free node: minimal weighted hop cost to placed partners.
    NodeId best_node = kInvalidNode;
    double best_cost = std::numeric_limits<double>::infinity();
    int scanned = 0;
    for (NodeId node = 0; node < num_nodes && scanned < max_candidates;
         ++node) {
      if (node_used[static_cast<std::size_t>(node)]) continue;
      ++scanned;
      double cost = 0.0;
      for (const auto& [peer, weight] : adj.partners[static_cast<std::size_t>(next)]) {
        if (!placed[static_cast<std::size_t>(peer)]) continue;
        cost += weight * plan->hop_distance(node, assign[static_cast<std::size_t>(peer)]);
        if (cost >= best_cost) break;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_node = node;
      }
    }
    place(next, best_node);
  }

  internal::refine_pairwise_swaps(assign, adj, *plan,
                                  options.refinement_rounds);
  return Mapping(std::move(assign), num_nodes);
}

}  // namespace netloc::mapping
