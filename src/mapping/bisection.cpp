#include "netloc/mapping/bisection.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "netloc/common/error.hpp"
#include "optimize_internal.hpp"

namespace netloc::mapping {

using internal::AdjacencyList;
using internal::ensure_plan;

namespace {

/// In-place balanced bisection of one rank group: reorder `group` so
/// its first `left_size` members form the left half, minimizing the
/// traffic weight cut between the halves with deterministic KL-style
/// gain passes. `side` is a num_ranks-sized scratch vector (-1 for
/// ranks outside the group) owned by the caller across the recursion.
class GroupSplitter {
 public:
  GroupSplitter(const AdjacencyList& adj, int num_ranks, int passes)
      : adj_(adj), passes_(passes),
        side_(static_cast<std::size_t>(num_ranks), -1) {}

  void split(std::vector<Rank>& group, std::size_t left_size) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      side_[static_cast<std::size_t>(group[i])] = i < left_size ? 0 : 1;
    }

    std::vector<std::pair<double, Rank>> left;
    std::vector<std::pair<double, Rank>> right;
    for (int pass = 0; pass < passes_; ++pass) {
      // Gain of moving a member to the other half: external minus
      // internal weight, counting only partners inside the group.
      left.clear();
      right.clear();
      for (const Rank r : group) {
        double in = 0.0;
        double out = 0.0;
        for (const auto& [peer, weight] :
             adj_.partners[static_cast<std::size_t>(r)]) {
          const std::int8_t peer_side = side_[static_cast<std::size_t>(peer)];
          if (peer_side < 0) continue;
          if (peer_side == side_[static_cast<std::size_t>(r)]) {
            in += weight;
          } else {
            out += weight;
          }
        }
        (side_[static_cast<std::size_t>(r)] == 0 ? left : right)
            .emplace_back(out - in, r);
      }
      // Highest gain first; ties towards the lower rank id so the
      // split is deterministic.
      auto by_gain = [](const std::pair<double, Rank>& a,
                        const std::pair<double, Rank>& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      };
      std::sort(left.begin(), left.end(), by_gain);
      std::sort(right.begin(), right.end(), by_gain);

      bool improved = false;
      const std::size_t pairs = std::min(left.size(), right.size());
      for (std::size_t i = 0; i < pairs; ++i) {
        const auto [gain_a, a] = left[i];
        const auto [gain_b, b] = right[i];
        // Gains go stale as swaps land; the next pass recomputes them.
        const double delta = gain_a + gain_b - 2.0 * adj_.weight_between(a, b);
        if (delta > 1e-12) {
          std::swap(side_[static_cast<std::size_t>(a)],
                    side_[static_cast<std::size_t>(b)]);
          improved = true;
        } else {
          break;  // Sorted descending: later pairs help even less.
        }
      }
      if (!improved) break;
    }

    // Left members first, each half keeping its relative order.
    std::stable_partition(group.begin(), group.end(), [&](Rank r) {
      return side_[static_cast<std::size_t>(r)] == 0;
    });
    for (const Rank r : group) side_[static_cast<std::size_t>(r)] = -1;
  }

 private:
  const AdjacencyList& adj_;
  int passes_;
  std::vector<std::int8_t> side_;
};

/// Recursively bisect `group` onto the slot interval [lo, hi), each
/// slot holding at most `capacity` ranks, writing slot ids into
/// `slot_of`. Split sizes are proportional to each side's capacity,
/// clamped so both sides stay feasible.
void assign_slots(std::vector<Rank> group, int lo, int hi, int capacity,
                  GroupSplitter& splitter, std::vector<int>& slot_of) {
  if (group.empty()) return;
  if (hi - lo == 1) {
    for (const Rank r : group) slot_of[static_cast<std::size_t>(r)] = lo;
    return;
  }
  const int mid = lo + (hi - lo) / 2;
  const auto len = static_cast<long>(group.size());
  const long left_cap = static_cast<long>(mid - lo) * capacity;
  const long right_cap = static_cast<long>(hi - mid) * capacity;
  long left_size = (len * (mid - lo) + (hi - lo) / 2) / (hi - lo);
  left_size = std::clamp(left_size, std::max<long>(0, len - right_cap),
                         std::min(len, left_cap));
  splitter.split(group, static_cast<std::size_t>(left_size));

  std::vector<Rank> left(group.begin(),
                         group.begin() + static_cast<std::ptrdiff_t>(left_size));
  group.erase(group.begin(),
              group.begin() + static_cast<std::ptrdiff_t>(left_size));
  assign_slots(std::move(left), lo, mid, capacity, splitter, slot_of);
  assign_slots(std::move(group), mid, hi, capacity, splitter, slot_of);
}

std::vector<Rank> all_ranks(int num_ranks) {
  std::vector<Rank> ranks(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) ranks[static_cast<std::size_t>(r)] = r;
  return ranks;
}

}  // namespace

Mapping recursive_bisection_optimize(std::span<const TrafficEdge> edges,
                                     int num_ranks,
                                     const topology::Topology& topo,
                                     const BisectionOptions& options,
                                     const topology::RoutePlan* plan) {
  if (num_ranks < 1) {
    throw ConfigError("recursive_bisection_optimize: num_ranks must be >= 1");
  }
  if (topo.num_nodes() < num_ranks) {
    throw ConfigError(
        "recursive_bisection_optimize: topology smaller than rank count");
  }
  const auto local_plan =
      ensure_plan(topo, plan, "recursive_bisection_optimize");
  const AdjacencyList adj(edges, num_ranks);

  // Multi-start: the KL-gain split, plus the pure order-preserving
  // split as a safety net — on wrap-around stencils the cut heuristic
  // can prefer partitions whose halves are geometrically farther
  // apart, and swap refinement cannot recover from that start.
  const auto build = [&](int split_passes) {
    GroupSplitter splitter(adj, num_ranks, split_passes);
    std::vector<int> slot_of(static_cast<std::size_t>(num_ranks), 0);
    assign_slots(all_ranks(num_ranks), 0, num_ranks, 1, splitter, slot_of);
    std::vector<NodeId> assign(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      assign[static_cast<std::size_t>(r)] =
          slot_of[static_cast<std::size_t>(r)];
    }
    internal::refine_pairwise_swaps(assign, adj, *plan,
                                    options.refinement_rounds);
    return Mapping(std::move(assign), topo.num_nodes());
  };
  Mapping best = build(options.split_passes);
  double best_cost = weighted_hop_cost(edges, topo, best, plan);
  if (options.split_passes > 0) {
    Mapping ordered = build(0);
    const double cost = weighted_hop_cost(edges, topo, ordered, plan);
    if (cost < best_cost) {
      best = std::move(ordered);
      best_cost = cost;
    }
  }
  if (options.greedy_seed) {
    // The greedy construction as a third seed, refined with the same
    // budget: its refined cost can only drop, so the portfolio result
    // is never costlier than greedy_optimize itself.
    std::vector<NodeId> assign =
        greedy_optimize(edges, num_ranks, topo, {}, plan).raw();
    internal::refine_pairwise_swaps(assign, adj, *plan,
                                    options.refinement_rounds);
    Mapping seeded(std::move(assign), topo.num_nodes());
    const double cost = weighted_hop_cost(edges, topo, seeded, plan);
    if (cost < best_cost) {
      best = std::move(seeded);
      best_cost = cost;
    }
  }
  return best;
}

Placement recursive_bisection_place(std::span<const TrafficEdge> edges,
                                    int num_ranks,
                                    const topology::Topology& topo,
                                    const MachineModel& machine,
                                    const BisectionOptions& options,
                                    const topology::RoutePlan* plan) {
  if (num_ranks < 1) {
    throw ConfigError("recursive_bisection_place: num_ranks must be >= 1");
  }
  const int per_node = machine.cores_per_node();
  const int needed = (num_ranks + per_node - 1) / per_node;
  if (topo.num_nodes() < needed) {
    throw ConfigError("recursive_bisection_place: topology hosts " +
                      std::to_string(topo.num_nodes()) + " nodes but " +
                      std::to_string(needed) + " are needed");
  }
  const auto local_plan = ensure_plan(topo, plan, "recursive_bisection_place");
  const AdjacencyList adj(edges, num_ranks);

  // Node level: bisect ranks onto [0, needed) with per-node capacity,
  // multi-start as in recursive_bisection_optimize — KL-gain split and
  // order-preserving split, refined, keeping the cheaper node view.
  const auto build_node_of = [&](int split_passes) {
    GroupSplitter splitter(adj, num_ranks, split_passes);
    std::vector<int> node_slot(static_cast<std::size_t>(num_ranks), 0);
    assign_slots(all_ranks(num_ranks), 0, needed, per_node, splitter,
                 node_slot);
    std::vector<NodeId> assign(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      assign[static_cast<std::size_t>(r)] =
          node_slot[static_cast<std::size_t>(r)];
    }
    // Node-level polish: pairwise swaps preserve per-node occupancy.
    internal::refine_pairwise_swaps(assign, adj, *plan,
                                    options.refinement_rounds);
    return assign;
  };
  std::vector<NodeId> node_of = build_node_of(options.split_passes);
  if (options.split_passes > 0) {
    std::vector<NodeId> ordered = build_node_of(0);
    const Mapping gained_view(std::vector<NodeId>(node_of), topo.num_nodes());
    const Mapping ordered_view(std::vector<NodeId>(ordered), topo.num_nodes());
    if (weighted_hop_cost(edges, topo, ordered_view, plan) <
        weighted_hop_cost(edges, topo, gained_view, plan)) {
      node_of = std::move(ordered);
    }
  }
  GroupSplitter splitter(adj, num_ranks, options.split_passes);

  // Below the node: bisect each node's group across its sockets, then
  // pack each socket's ranks onto cores in rank order.
  std::vector<std::vector<Rank>> per_node_ranks(
      static_cast<std::size_t>(needed));
  for (int r = 0; r < num_ranks; ++r) {
    per_node_ranks[static_cast<std::size_t>(
                       node_of[static_cast<std::size_t>(r)])]
        .push_back(r);
  }
  std::vector<PlaceCoord> coords(static_cast<std::size_t>(num_ranks));
  std::vector<int> socket_slot(static_cast<std::size_t>(num_ranks), 0);
  for (int node = 0; node < needed; ++node) {
    auto& group = per_node_ranks[static_cast<std::size_t>(node)];
    if (group.empty()) continue;
    assign_slots(group, 0, machine.sockets_per_node(),
                 machine.cores_per_socket(), splitter, socket_slot);
    std::vector<int> next_core(
        static_cast<std::size_t>(machine.sockets_per_node()), 0);
    for (const Rank r : group) {  // ascending rank order within the node
      const int socket = socket_slot[static_cast<std::size_t>(r)];
      coords[static_cast<std::size_t>(r)] = {
          node, socket, next_core[static_cast<std::size_t>(socket)]++};
    }
  }
  return {std::move(coords), topo.num_nodes(), machine};
}

}  // namespace netloc::mapping
