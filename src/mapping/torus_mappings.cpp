#include "netloc/mapping/torus_mappings.hpp"

#include <algorithm>
#include <vector>

#include "netloc/common/error.hpp"

namespace netloc::mapping {

namespace {

Mapping from_node_order(int num_ranks, const topology::Torus3D& torus,
                        const std::vector<NodeId>& order) {
  if (num_ranks > torus.num_nodes()) {
    throw ConfigError("torus mapping: more ranks than nodes");
  }
  std::vector<NodeId> assign(order.begin(),
                             order.begin() + static_cast<std::ptrdiff_t>(num_ranks));
  return Mapping(std::move(assign), torus.num_nodes());
}

}  // namespace

Mapping snake_torus(int num_ranks, const topology::Torus3D& torus) {
  const auto [ex, ey, ez] = torus.extents();
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(torus.num_nodes()));
  int row = 0;  // Global row counter: x alternates over the whole walk
                // so the snake stays contiguous across plane boundaries.
  for (int z = 0; z < ez; ++z) {
    for (int yi = 0; yi < ey; ++yi, ++row) {
      const int y = (z % 2 == 0) ? yi : ey - 1 - yi;
      for (int xi = 0; xi < ex; ++xi) {
        const int x = (row % 2 == 0) ? xi : ex - 1 - xi;
        order.push_back(torus.node_at(x, y, z));
      }
    }
  }
  return from_node_order(num_ranks, torus, order);
}

Mapping subcube_torus(int num_ranks, const topology::Torus3D& torus, int block) {
  if (block < 1) throw ConfigError("subcube_torus: block must be >= 1");
  const auto [ex, ey, ez] = torus.extents();
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(torus.num_nodes()));
  for (int bz = 0; bz < ez; bz += block) {
    for (int by = 0; by < ey; by += block) {
      for (int bx = 0; bx < ex; bx += block) {
        for (int z = bz; z < std::min(bz + block, ez); ++z) {
          for (int y = by; y < std::min(by + block, ey); ++y) {
            for (int x = bx; x < std::min(bx + block, ex); ++x) {
              order.push_back(torus.node_at(x, y, z));
            }
          }
        }
      }
    }
  }
  return from_node_order(num_ranks, torus, order);
}

}  // namespace netloc::mapping
