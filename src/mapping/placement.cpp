#include "netloc/mapping/placement.hpp"

#include <string>

#include "netloc/common/error.hpp"

namespace netloc::mapping {

namespace {

/// Socket/core coordinates of local slot `k` under depth-first filling
/// (socket 0's cores before socket 1's).
PlaceCoord depth_first_slot(NodeId node, int k, const MachineModel& machine) {
  return {node, k / machine.cores_per_socket(),
          k % machine.cores_per_socket()};
}

}  // namespace

Placement::Placement(std::vector<PlaceCoord> coords, int num_nodes,
                     MachineModel machine)
    : coords_(std::move(coords)), num_nodes_(num_nodes), machine_(machine) {
  if (num_nodes_ < 1) throw ConfigError("Placement: num_nodes must be >= 1");
  if (coords_.empty()) throw ConfigError("Placement: no ranks");
  for (std::size_t r = 0; r < coords_.size(); ++r) {
    const PlaceCoord& c = coords_[r];
    if (c.node < 0 || c.node >= num_nodes_) {
      throw ConfigError("Placement: rank " + std::to_string(r) + " node " +
                        std::to_string(c.node) + " out of range [0, " +
                        std::to_string(num_nodes_) + ")");
    }
    if (c.socket < 0 || c.socket >= machine_.sockets_per_node()) {
      throw ConfigError("Placement: rank " + std::to_string(r) + " socket " +
                        std::to_string(c.socket) + " out of range [0, " +
                        std::to_string(machine_.sockets_per_node()) + ")");
    }
    if (c.core < 0 || c.core >= machine_.cores_per_socket()) {
      throw ConfigError("Placement: rank " + std::to_string(r) + " core " +
                        std::to_string(c.core) + " out of range [0, " +
                        std::to_string(machine_.cores_per_socket()) + ")");
    }
  }
}

Mapping Placement::flat_view() const { return {node_table(), num_nodes_}; }

std::vector<NodeId> Placement::node_table() const {
  std::vector<NodeId> nodes(coords_.size());
  for (std::size_t r = 0; r < coords_.size(); ++r) nodes[r] = coords_[r].node;
  return nodes;
}

Placement Placement::linear(int num_ranks, int num_nodes,
                            MachineModel machine) {
  if (num_ranks > num_nodes) {
    throw ConfigError("Placement::linear: more ranks than nodes");
  }
  std::vector<PlaceCoord> coords(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    coords[static_cast<std::size_t>(r)] = {r, 0, 0};
  }
  return {std::move(coords), num_nodes, machine};
}

Placement Placement::blocked(int num_ranks, int num_nodes,
                             MachineModel machine) {
  const int per_node = machine.cores_per_node();
  const int needed = (num_ranks + per_node - 1) / per_node;
  if (needed > num_nodes) {
    throw ConfigError("Placement::blocked: not enough nodes");
  }
  std::vector<PlaceCoord> coords(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    coords[static_cast<std::size_t>(r)] =
        depth_first_slot(r / per_node, r % per_node, machine);
  }
  return {std::move(coords), num_nodes, machine};
}

Placement Placement::round_robin(int num_ranks, int num_nodes,
                                 MachineModel machine) {
  std::vector<PlaceCoord> coords(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    const NodeId node = r % num_nodes;
    const int k = r / num_nodes;  // arrival index on this node
    if (k >= machine.cores_per_node()) {
      throw ConfigError("Placement::round_robin: node " +
                        std::to_string(node) + " would host more ranks than "
                        "its " + std::to_string(machine.cores_per_node()) +
                        " core(s)");
    }
    coords[static_cast<std::size_t>(r)] = {
        node, k % machine.sockets_per_node(),
        (k / machine.sockets_per_node()) % machine.cores_per_socket()};
  }
  return {std::move(coords), num_nodes, machine};
}

Placement Placement::from_mapping(const Mapping& mapping,
                                  MachineModel machine) {
  std::vector<int> next_slot(static_cast<std::size_t>(mapping.num_nodes()), 0);
  std::vector<PlaceCoord> coords(
      static_cast<std::size_t>(mapping.num_ranks()));
  for (Rank r = 0; r < mapping.num_ranks(); ++r) {
    const NodeId node = mapping.node_of(r);
    const int k = next_slot[static_cast<std::size_t>(node)]++;
    if (k >= machine.cores_per_node()) {
      throw ConfigError("Placement::from_mapping: node " +
                        std::to_string(node) + " hosts more ranks than its " +
                        std::to_string(machine.cores_per_node()) + " core(s)");
    }
    coords[static_cast<std::size_t>(r)] = depth_first_slot(node, k, machine);
  }
  return {std::move(coords), mapping.num_nodes(), machine};
}

}  // namespace netloc::mapping
