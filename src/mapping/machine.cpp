#include "netloc/mapping/machine.hpp"

#include <charconv>

#include "netloc/common/error.hpp"

namespace netloc::mapping {

namespace {

/// Strict non-negative integer parse of an entire token.
int parse_count(std::string_view token, const char* what) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() || value < 1) {
    throw ConfigError("MachineModel: " + std::string(what) + " '" +
                      std::string(token) + "' is not a positive integer");
  }
  return value;
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::Core:
      return "core";
    case Level::Socket:
      return "socket";
    case Level::Node:
      return "node";
    case Level::Network:
      return "network";
  }
  return "?";
}

MachineModel::MachineModel(int sockets_per_node, int cores_per_socket)
    : sockets_per_node_(sockets_per_node), cores_per_socket_(cores_per_socket) {
  if (sockets_per_node_ < 1 || cores_per_socket_ < 1) {
    throw ConfigError("MachineModel: sockets_per_node and cores_per_socket "
                      "must both be >= 1");
  }
}

std::string MachineModel::label() const {
  return std::to_string(sockets_per_node_) + "x" +
         std::to_string(cores_per_socket_);
}

double MachineModel::link_bandwidth_bytes_per_s(Level level) const {
  // Typical shared-memory and paper network figures; reporting context
  // only (docs/MAPPING.md).
  switch (level) {
    case Level::Core:
      return 100e9;  // L1/L2-resident exchange
    case Level::Socket:
      return 50e9;  // shared last-level cache / local DRAM
    case Level::Node:
      return 25e9;  // cross-socket interconnect (UPI-class)
    case Level::Network:
      return 12e9;  // the paper's 12 GB/s network link
  }
  return 0.0;
}

MachineModel MachineModel::parse(std::string_view text) {
  if (text.empty()) throw ConfigError("MachineModel: empty spec");
  const auto x = text.find('x');
  if (x == std::string_view::npos) {
    return degenerate(parse_count(text, "core count"));
  }
  return {parse_count(text.substr(0, x), "socket count"),
          parse_count(text.substr(x + 1), "cores-per-socket count")};
}

}  // namespace netloc::mapping
