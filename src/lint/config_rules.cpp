#include "netloc/lint/config_rules.hpp"

#include <string>
#include <unordered_map>

#include "netloc/lint/registry.hpp"

namespace netloc::lint {

namespace {

Diagnostic make(std::string_view rule, const std::string& source,
                std::string message, std::string fixit = {}, long index = -1) {
  SourceContext context;
  context.source = source;
  context.index = index;
  return RuleRegistry::instance().make(rule, std::move(context),
                                       std::move(message), std::move(fixit));
}

void check_capacity(LintReport& report, const std::string& source,
                    const std::string& config, long capacity, int num_ranks) {
  if (capacity < num_ranks) {
    report.add(make("TP001", source,
                    config + " hosts " + std::to_string(capacity) +
                        " nodes but the trace has " +
                        std::to_string(num_ranks) + " ranks",
                    "scale the topology up or shrink the rank count"));
  } else if (capacity > num_ranks && num_ranks > 0) {
    report.add(make("TP002", source,
                    config + " hosts " + std::to_string(capacity) +
                        " nodes for " + std::to_string(num_ranks) +
                        " ranks; " + std::to_string(capacity - num_ranks) +
                        " nodes stay idle"));
  }
}

}  // namespace

LintReport lint_torus(const std::array<int, 3>& dims, int num_ranks,
                      const std::string& source) {
  LintReport report;
  const std::string config = "torus (" + std::to_string(dims[0]) + "," +
                             std::to_string(dims[1]) + "," +
                             std::to_string(dims[2]) + ")";
  for (int d : dims) {
    if (d < 1) {
      report.add(make("TP010", source,
                      config + ": extent " + std::to_string(d) +
                          " is not positive"));
      return report;
    }
  }
  const long capacity =
      static_cast<long>(dims[0]) * dims[1] * dims[2];
  check_capacity(report, source, config, capacity, num_ranks);
  return report;
}

LintReport lint_fat_tree(int radix, int stages, int num_ranks,
                         const std::string& source) {
  LintReport report;
  const std::string config = "fat tree (radix " + std::to_string(radix) +
                             ", " + std::to_string(stages) + " stages)";
  if (radix < 2 || stages < 1) {
    report.add(make("TP010", source,
                    config + ": radix must be >= 2 and stages >= 1"));
    return report;
  }
  if (radix % 2 != 0) {
    report.add(make("TP003", source,
                    config + ": odd radix cannot split ports into equal "
                             "up/down halves",
                    "use an even switch radix (the paper uses 48)"));
    return report;
  }
  long capacity = radix;
  if (stages > 1) {
    capacity = 1;
    for (int s = 0; s < stages; ++s) {
      capacity *= radix / 2;
      if (capacity > (1L << 40)) break;  // Saturate; enough for any rank count.
    }
  }
  check_capacity(report, source, config, capacity, num_ranks);
  return report;
}

LintReport lint_dragonfly(int a, int h, int p, int num_ranks,
                          const std::string& source) {
  LintReport report;
  const std::string config = "dragonfly (a=" + std::to_string(a) +
                             ", h=" + std::to_string(h) +
                             ", p=" + std::to_string(p) + ")";
  if (a < 1 || h < 1 || p < 1) {
    report.add(make("TP010", source,
                    config + ": a, h and p must all be positive"));
    return report;
  }
  if ((a * h) % 2 != 0) {
    report.add(make("TP004", source,
                    config + ": a*h = " + std::to_string(a * h) +
                        " is odd, so palm-tree global links cannot pair up",
                    "choose a and h with an even product"));
    return report;
  }
  if (a != 2 * h || a != 2 * p) {
    report.add(make("TP005", source,
                    config + ": deviates from the balanced a = 2h = 2p "
                             "configuration the paper's Table 2 uses"));
  }
  const long groups = static_cast<long>(a) * h + 1;
  const long capacity = groups * a * p;
  check_capacity(report, source, config, capacity, num_ranks);
  return report;
}

LintReport lint_mapping(const std::vector<NodeId>& rank_to_node,
                        int num_nodes, int expected_ranks, int cores_per_node,
                        const std::string& source) {
  LintReport report;
  if (num_nodes < 1) {
    report.add(make("TP010", source,
                    "mapping declares " + std::to_string(num_nodes) +
                        " nodes; need at least 1"));
    return report;
  }
  if (expected_ranks > 0 &&
      static_cast<int>(rank_to_node.size()) != expected_ranks) {
    report.add(make("TP009", source,
                    "mapping assigns " + std::to_string(rank_to_node.size()) +
                        " ranks but the trace has " +
                        std::to_string(expected_ranks),
                    "regenerate the rankfile for this trace"));
  }

  std::unordered_map<NodeId, int> per_node;
  for (std::size_t r = 0; r < rank_to_node.size(); ++r) {
    const NodeId node = rank_to_node[r];
    if (node == kInvalidNode) {
      report.add(make("TP007", source,
                      "rank " + std::to_string(r) + " is never assigned a node",
                      "add a 'rank " + std::to_string(r) + "=<node>' entry",
                      static_cast<long>(r)));
      continue;
    }
    if (node < 0 || node >= num_nodes) {
      report.add(make("TP006", source,
                      "rank " + std::to_string(r) + " maps to node " +
                          std::to_string(node) + ", outside [0, " +
                          std::to_string(num_nodes) + ")",
                      {}, static_cast<long>(r)));
      continue;
    }
    ++per_node[node];
  }

  if (cores_per_node > 0) {
    for (const auto& [node, count] : per_node) {
      if (count > cores_per_node) {
        report.add(make("TP008", source,
                        "node " + std::to_string(node) + " hosts " +
                            std::to_string(count) + " ranks but has only " +
                            std::to_string(cores_per_node) + " core(s)",
                        "spread ranks over more nodes or raise cores-per-node",
                        node));
      }
    }
  }
  return report;
}

LintReport lint_rankfile(const mapping::RawRankfile& raw, int expected_ranks,
                         int cores_per_node, const std::string& source) {
  LintReport report;
  for (long line : raw.malformed_lines) {
    SourceContext context;
    context.source = source;
    context.line = line;
    report.add(RuleRegistry::instance().make(
        "TP011", std::move(context), "unparseable rankfile line",
        "expected 'nodes <n>' or 'rank <r>=<node>'"));
  }
  for (Rank rank : raw.duplicate_ranks) {
    report.add(make("TP007", source,
                    "rank " + std::to_string(rank) +
                        " is assigned more than once; the last entry wins",
                    "keep exactly one entry per rank", rank));
  }
  report.merge(lint_mapping(raw.rank_to_node, raw.num_nodes, expected_ranks,
                            cores_per_node, source));
  return report;
}

}  // namespace netloc::lint
