#include "netloc/lint/config_rules.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "netloc/lint/registry.hpp"

namespace netloc::lint {

namespace {

Diagnostic make(std::string_view rule, const std::string& source,
                std::string message, std::string fixit = {}, long index = -1) {
  SourceContext context;
  context.source = source;
  context.index = index;
  return RuleRegistry::instance().make(rule, std::move(context),
                                       std::move(message), std::move(fixit));
}

void check_capacity(LintReport& report, const std::string& source,
                    const std::string& config, long capacity, int num_ranks) {
  if (capacity < num_ranks) {
    report.add(make("TP001", source,
                    config + " hosts " + std::to_string(capacity) +
                        " nodes but the trace has " +
                        std::to_string(num_ranks) + " ranks",
                    "scale the topology up or shrink the rank count"));
  } else if (capacity > num_ranks && num_ranks > 0) {
    report.add(make("TP002", source,
                    config + " hosts " + std::to_string(capacity) +
                        " nodes for " + std::to_string(num_ranks) +
                        " ranks; " + std::to_string(capacity - num_ranks) +
                        " nodes stay idle"));
  }
}

}  // namespace

LintReport lint_torus(const std::array<int, 3>& dims, int num_ranks,
                      const std::string& source) {
  LintReport report;
  const std::string config = "torus (" + std::to_string(dims[0]) + "," +
                             std::to_string(dims[1]) + "," +
                             std::to_string(dims[2]) + ")";
  for (int d : dims) {
    if (d < 1) {
      report.add(make("TP010", source,
                      config + ": extent " + std::to_string(d) +
                          " is not positive"));
      return report;
    }
  }
  const long capacity =
      static_cast<long>(dims[0]) * dims[1] * dims[2];
  check_capacity(report, source, config, capacity, num_ranks);
  return report;
}

LintReport lint_fat_tree(int radix, int stages, int num_ranks,
                         const std::string& source) {
  LintReport report;
  const std::string config = "fat tree (radix " + std::to_string(radix) +
                             ", " + std::to_string(stages) + " stages)";
  if (radix < 2 || stages < 1) {
    report.add(make("TP010", source,
                    config + ": radix must be >= 2 and stages >= 1"));
    return report;
  }
  if (radix % 2 != 0) {
    report.add(make("TP003", source,
                    config + ": odd radix cannot split ports into equal "
                             "up/down halves",
                    "use an even switch radix (the paper uses 48)"));
    return report;
  }
  long capacity = radix;
  if (stages > 1) {
    capacity = 1;
    for (int s = 0; s < stages; ++s) {
      capacity *= radix / 2;
      if (capacity > (1L << 40)) break;  // Saturate; enough for any rank count.
    }
  }
  check_capacity(report, source, config, capacity, num_ranks);
  return report;
}

LintReport lint_dragonfly(int a, int h, int p, int num_ranks,
                          const std::string& source) {
  LintReport report;
  const std::string config = "dragonfly (a=" + std::to_string(a) +
                             ", h=" + std::to_string(h) +
                             ", p=" + std::to_string(p) + ")";
  if (a < 1 || h < 1 || p < 1) {
    report.add(make("TP010", source,
                    config + ": a, h and p must all be positive"));
    return report;
  }
  if ((a * h) % 2 != 0) {
    report.add(make("TP004", source,
                    config + ": a*h = " + std::to_string(a * h) +
                        " is odd, so palm-tree global links cannot pair up",
                    "choose a and h with an even product"));
    return report;
  }
  if (a != 2 * h || a != 2 * p) {
    report.add(make("TP005", source,
                    config + ": deviates from the balanced a = 2h = 2p "
                             "configuration the paper's Table 2 uses"));
  }
  const long groups = static_cast<long>(a) * h + 1;
  const long capacity = groups * a * p;
  check_capacity(report, source, config, capacity, num_ranks);
  return report;
}

LintReport lint_mapping(const std::vector<NodeId>& rank_to_node,
                        int num_nodes, int expected_ranks, int cores_per_node,
                        const std::string& source) {
  LintReport report;
  if (num_nodes < 1) {
    report.add(make("TP010", source,
                    "mapping declares " + std::to_string(num_nodes) +
                        " nodes; need at least 1"));
    return report;
  }
  if (expected_ranks > 0 &&
      static_cast<int>(rank_to_node.size()) != expected_ranks) {
    report.add(make("TP009", source,
                    "mapping assigns " + std::to_string(rank_to_node.size()) +
                        " ranks but the trace has " +
                        std::to_string(expected_ranks),
                    "regenerate the rankfile for this trace"));
  }

  std::unordered_map<NodeId, int> per_node;
  for (std::size_t r = 0; r < rank_to_node.size(); ++r) {
    const NodeId node = rank_to_node[r];
    if (node == kInvalidNode) {
      report.add(make("TP007", source,
                      "rank " + std::to_string(r) + " is never assigned a node",
                      "add a 'rank " + std::to_string(r) + "=<node>' entry",
                      static_cast<long>(r)));
      continue;
    }
    if (node < 0 || node >= num_nodes) {
      report.add(make("TP006", source,
                      "rank " + std::to_string(r) + " maps to node " +
                          std::to_string(node) + ", outside [0, " +
                          std::to_string(num_nodes) + ")",
                      {}, static_cast<long>(r)));
      continue;
    }
    ++per_node[node];
  }

  if (cores_per_node > 0) {
    for (const auto& [node, count] : per_node) {
      if (count > cores_per_node) {
        report.add(make("TP008", source,
                        "node " + std::to_string(node) + " hosts " +
                            std::to_string(count) + " ranks but has only " +
                            std::to_string(cores_per_node) + " core(s)",
                        "spread ranks over more nodes or raise cores-per-node",
                        node));
      }
    }
  }
  return report;
}

LintReport lint_mapping(const std::vector<NodeId>& rank_to_node, int num_nodes,
                        int expected_ranks,
                        const mapping::MachineModel& machine,
                        const std::string& source) {
  return lint_mapping(rank_to_node, num_nodes, expected_ranks,
                      machine.cores_per_node(), source);
}

LintReport lint_placement(const mapping::Placement& placement,
                          int expected_ranks, const std::string& source) {
  LintReport report =
      lint_mapping(placement.node_table(), placement.num_nodes(),
                   expected_ranks, placement.machine(), source);

  // TP014: several ranks on one (node, socket, core) slot. The
  // constructor has already range-checked every coordinate.
  const mapping::MachineModel& machine = placement.machine();
  std::unordered_map<long, int> per_slot;
  for (Rank r = 0; r < placement.num_ranks(); ++r) {
    const mapping::PlaceCoord& c = placement.coord_of(r);
    const long slot =
        (static_cast<long>(c.node) * machine.sockets_per_node() + c.socket) *
            machine.cores_per_socket() +
        c.core;
    if (++per_slot[slot] == 2) {
      report.add(make("TP014", source,
                      "node " + std::to_string(c.node) + " socket " +
                          std::to_string(c.socket) + " core " +
                          std::to_string(c.core) +
                          " hosts more than one rank",
                      "give each rank its own core slot or enlarge the "
                      "machine model",
                      c.node));
    }
  }
  return report;
}

LintReport lint_rankfile(const mapping::RawRankfile& raw, int expected_ranks,
                         int cores_per_node, const std::string& source) {
  LintReport report;
  for (long line : raw.malformed_lines) {
    SourceContext context;
    context.source = source;
    context.line = line;
    report.add(RuleRegistry::instance().make(
        "TP011", std::move(context), "unparseable rankfile line",
        "expected 'nodes <n>' or 'rank <r>=<node>'"));
  }
  for (Rank rank : raw.duplicate_ranks) {
    report.add(make("TP007", source,
                    "rank " + std::to_string(rank) +
                        " is assigned more than once; the last entry wins",
                    "keep exactly one entry per rank", rank));
  }
  report.merge(lint_mapping(raw.rank_to_node, raw.num_nodes, expected_ranks,
                            cores_per_node, source));
  return report;
}

LintReport lint_topology_graph(const topology::Topology& topo,
                               const std::string& source) {
  LintReport report;
  const auto graph = topo.build_graph();
  if (!graph.has_value()) return report;  // No graph form: vacuously fine.
  const std::string config = topo.name() + " " + topo.config_string();

  if (graph->num_endpoints() != topo.num_nodes()) {
    report.add(make("TP012", source,
                    config + ": graph hosts " +
                        std::to_string(graph->num_endpoints()) +
                        " endpoints but the topology declares " +
                        std::to_string(topo.num_nodes()) + " nodes"));
    return report;  // Distance checks below would index out of range.
  }
  if (graph->num_links() != topo.num_links()) {
    report.add(make("TP012", source,
                    config + ": graph link-id space has " +
                        std::to_string(graph->num_links()) +
                        " slots but num_links() reports " +
                        std::to_string(topo.num_links()),
                    "the graph must cover the dense LinkId space so "
                    "per-link load vectors transfer without translation"));
  }

  const LinkId common = std::min(graph->num_links(), topo.num_links());
  for (LinkId l = 0; l < common; ++l) {
    if (!graph->link_present(l)) continue;
    if (graph->link_is_global(l) != topo.link_is_global(l)) {
      report.add(make("TP012", source,
                      config + ": link " + std::to_string(l) +
                          " classified " +
                          (graph->link_is_global(l) ? "global" : "local") +
                          " by the graph but " +
                          (topo.link_is_global(l) ? "global" : "local") +
                          " by link_is_global()",
                      {}, l));
      break;  // One sample is enough; the rest is usually the same bug.
    }
  }

  // Graph shortest paths must never exceed the closed-form hop count:
  // a longer BFS distance means the routing the metrics charge uses a
  // link the graph says does not exist. (Strictly shorter is legal —
  // the dragonfly's minimal hierarchical routing takes detours BFS
  // does not.) Sampled sources keep the lint pass cheap at scale.
  const int n = topo.num_nodes();
  const int stride = std::max(1, n / 8);
  for (int a = 0; a < n && !report.has_errors(); a += stride) {
    const auto dist = graph->bfs_distances(a);
    for (int b = 0; b < n; ++b) {
      const int closed = topo.hop_distance(a, b);
      if (dist[b] < 0) {
        report.add(make("TP012", source,
                        config + ": endpoints " + std::to_string(a) + " and " +
                            std::to_string(b) +
                            " are disconnected in the graph but " +
                            std::to_string(closed) + " hops apart closed-form",
                        {}, a));
        break;
      }
      if (dist[b] > closed) {
        report.add(make("TP012", source,
                        config + ": graph distance " + std::to_string(dist[b]) +
                            " between endpoints " + std::to_string(a) +
                            " and " + std::to_string(b) +
                            " exceeds the closed-form hop count " +
                            std::to_string(closed),
                        {}, a));
        break;
      }
    }
  }
  return report;
}

LintReport lint_fault_mask(const topology::Topology& topo,
                           const std::vector<LinkId>& failed_links,
                           const std::string& source) {
  LintReport report;
  const std::string config = topo.name() + " " + topo.config_string();
  const auto graph = topo.build_graph();
  if (!graph.has_value()) {
    report.add(make("TP012", source,
                    config + ": topology exposes no graph form, so link "
                             "fault masks cannot be applied",
                    "implement build_graph() for this topology"));
    return report;
  }

  std::vector<std::uint8_t> mask(static_cast<std::size_t>(graph->num_links()),
                                 0);
  int masked_present = 0;
  for (const LinkId l : failed_links) {
    if (l < 0 || l >= graph->num_links()) {
      report.add(make("TP012", source,
                      config + ": failed link id " + std::to_string(l) +
                          " outside [0, " + std::to_string(graph->num_links()) +
                          ")",
                      {}, l));
      continue;
    }
    mask[static_cast<std::size_t>(l)] = 1;
    if (graph->link_present(l)) ++masked_present;
  }

  if (!graph->endpoints_connected(mask)) {
    // Name one unreachable pair so the warning is actionable.
    const auto dist = graph->bfs_distances(0, mask);
    int cut_off = -1;
    for (int b = 0; b < graph->num_endpoints(); ++b) {
      if (dist[b] < 0) {
        cut_off = b;
        break;
      }
    }
    report.add(make("TP013", source,
                    config + ": failing " + std::to_string(masked_present) +
                        " link(s) disconnects the endpoint set (endpoint " +
                        std::to_string(cut_off) +
                        " is unreachable from endpoint 0)",
                    "traffic between severed endpoints is reported as "
                    "unroutable, not rerouted"));
  }
  return report;
}

}  // namespace netloc::lint
