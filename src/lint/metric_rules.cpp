#include "netloc/lint/metric_rules.hpp"

#include <string>

#include "netloc/lint/registry.hpp"

namespace netloc::lint {

namespace {

Diagnostic make(std::string_view rule, const std::string& source,
                std::string message, std::string fixit = {}, long index = -1) {
  SourceContext context;
  context.source = source;
  context.index = index;
  return RuleRegistry::instance().make(rule, std::move(context),
                                       std::move(message), std::move(fixit));
}

}  // namespace

LintReport lint_traffic_matrix(const metrics::TrafficMatrix& matrix,
                               const std::string& source) {
  LintReport report;
  const int n = matrix.num_ranks();

  // MT001: the running totals must equal the cell sums exactly — both
  // are integer byte counts accumulated from the same events, so any
  // drift is an accounting bug or a corrupted matrix.
  Bytes cell_sum = 0;
  Bytes diagonal = 0;
  std::vector<Bytes> row_sum(static_cast<std::size_t>(n), 0);
  std::vector<Bytes> col_sum(static_cast<std::size_t>(n), 0);
  matrix.for_each_nonzero(
      [&](Rank src, Rank dst, const metrics::TrafficCell& cell) {
        cell_sum += cell.bytes;
        row_sum[static_cast<std::size_t>(src)] += cell.bytes;
        col_sum[static_cast<std::size_t>(dst)] += cell.bytes;
        if (src == dst) diagonal += cell.bytes;
      });
  if (cell_sum != matrix.total_bytes()) {
    report.add(make("MT001", source,
                    "cell sum " + std::to_string(cell_sum) +
                        " bytes disagrees with the recorded total " +
                        std::to_string(matrix.total_bytes()),
                    "rebuild the matrix from the trace"));
  }
  if (diagonal > 0) {
    report.add(make("MT002", source,
                    "diagonal carries " + std::to_string(diagonal) +
                        " bytes; self-traffic never enters the network"));
  }

  // MT003: a rank participating in only one direction of the volume
  // exchange — the per-rank view of conservation. Collectives translate
  // to symmetric participation, so a one-sided rank usually means a
  // dropped rank file.
  int flagged = 0;
  for (Rank r = 0; r < n && flagged < 8; ++r) {
    const Bytes sent = row_sum[static_cast<std::size_t>(r)];
    const Bytes received = col_sum[static_cast<std::size_t>(r)];
    if ((sent == 0) != (received == 0)) {
      report.add(make("MT003", source,
                      "rank " + std::to_string(r) + " " +
                          (sent > 0 ? "sends " + std::to_string(sent) +
                                          " bytes but receives none"
                                    : "receives " + std::to_string(received) +
                                          " bytes but sends none"),
                      {}, r));
      ++flagged;
    }
  }
  return report;
}

LintReport lint_utilization(double utilization_percent, Bytes total_bytes,
                            const std::string& source) {
  LintReport report;
  if (utilization_percent > 100.0) {
    report.add(make("MT004", source,
                    "utilization " + std::to_string(utilization_percent) +
                        "% exceeds 100%; Eq. 5 inputs are inconsistent",
                    "check the execution time, bandwidth and link count"));
  } else if (utilization_percent <= 0.0 && total_bytes > 0) {
    report.add(make("MT005", source,
                    "utilization is zero although the trace moves " +
                        std::to_string(total_bytes) + " bytes",
                    "the execution time or link count is likely wrong"));
  }
  return report;
}

LintReport lint_congestion_windows(int windows, double threshold,
                                   Seconds duration, Count timed_events,
                                   const std::string& source) {
  LintReport report;
  if (duration <= 0.0 && timed_events > 0) {
    report.add(make("MT006", source,
                    "trace duration is " + std::to_string(duration) +
                        " s but " + std::to_string(timed_events) +
                        " timed events arrived; all traffic collapses into "
                        "window 0 and no offered-load rate can be derived",
                    "fix the trace's recorded duration"));
  }
  if (threshold >= 1.0) {
    report.add(make("MT007", source,
                    "hot-link threshold " + std::to_string(threshold) +
                        " is at or above capacity (fraction 1.0); every hot "
                        "window is already an exceedance",
                    "pick a threshold in (0, 1)"));
  }
  // More windows than timed events guarantees empty windows between
  // occupied ones: the window grid samples finer than the trace can
  // resolve, so burst durations alias to the event spacing.
  if (duration > 0.0 && timed_events > 0 &&
      static_cast<Count>(windows) > timed_events) {
    report.add(make("TP015", source,
                    std::to_string(windows) + " windows over only " +
                        std::to_string(timed_events) +
                        " timed events; hot-link durations alias the event "
                        "spacing rather than resolving bursts",
                    "use at most as many windows as timed events"));
  }
  return report;
}

LintReport lint_window_duration(Seconds binned, Seconds reported,
                                const std::string& source) {
  LintReport report;
  report.add(make("TR011", source,
                  "producer reported " + std::to_string(reported) +
                      " s at on_end() but windows were binned with " +
                      std::to_string(binned) + " s known up front",
                  "pass the producer's true duration to the accumulator"));
  return report;
}

}  // namespace netloc::lint
