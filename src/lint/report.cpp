#include "netloc/lint/report.hpp"

#include <ostream>
#include <string>

#include "netloc/common/csv.hpp"

namespace netloc::lint {

void write_text(const LintReport& report, std::ostream& out) {
  for (const auto& d : report.diagnostics()) {
    out << format(d) << '\n';
  }
  out << report.count(Severity::Error) << " errors, "
      << report.count(Severity::Warning) << " warnings, "
      << report.count(Severity::Note) << " notes\n";
}

void write_csv(const LintReport& report, std::ostream& out) {
  CsvWriter csv(out);
  csv.write_header({"rule", "severity", "source", "line", "index", "message",
                    "fixit"});
  for (const auto& d : report.diagnostics()) {
    csv.write_row({d.rule_id, to_string(d.severity), d.context.source,
                   d.context.line >= 0 ? std::to_string(d.context.line) : "",
                   d.context.index >= 0 ? std::to_string(d.context.index) : "",
                   d.message, d.fixit});
  }
}

}  // namespace netloc::lint
