#include "netloc/lint/diagnostic.hpp"

#include <algorithm>
#include <sstream>

#include "netloc/common/error.hpp"

namespace netloc::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

Severity parse_severity(const std::string& text) {
  if (text == "note") return Severity::Note;
  if (text == "warning") return Severity::Warning;
  if (text == "error") return Severity::Error;
  throw ConfigError("unknown severity '" + text +
                    "' (expected note|warning|error)");
}

std::string format(const Diagnostic& diagnostic) {
  std::ostringstream out;
  out << diagnostic.context.source;
  if (diagnostic.context.line >= 0) out << ':' << diagnostic.context.line;
  out << ": " << to_string(diagnostic.severity) << ": ["
      << diagnostic.rule_id << "] " << diagnostic.message;
  if (!diagnostic.fixit.empty()) out << " (fix: " << diagnostic.fixit << ")";
  return out.str();
}

LintReport::LintReport(std::vector<Diagnostic> diagnostics)
    : diagnostics_(std::move(diagnostics)) {}

void LintReport::add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

void LintReport::merge(LintReport other) {
  diagnostics_.insert(diagnostics_.end(),
                      std::make_move_iterator(other.diagnostics_.begin()),
                      std::make_move_iterator(other.diagnostics_.end()));
}

std::size_t LintReport::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [&](const Diagnostic& d) { return d.severity == severity; }));
}

bool LintReport::fails(Severity threshold) const {
  return std::any_of(
      diagnostics_.begin(), diagnostics_.end(),
      [&](const Diagnostic& d) { return d.severity >= threshold; });
}

std::vector<Diagnostic> LintReport::by_rule(const std::string& rule_id) const {
  std::vector<Diagnostic> out;
  for (const auto& d : diagnostics_) {
    if (d.rule_id == rule_id) out.push_back(d);
  }
  return out;
}

}  // namespace netloc::lint
