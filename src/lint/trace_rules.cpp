#include "netloc/lint/trace_rules.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "netloc/lint/registry.hpp"

namespace netloc::lint {

namespace {

/// Per-rule emission cap: one systematic defect (e.g. every event
/// self-addressed) yields a handful of representative diagnostics plus
/// a tally, not millions of lines.
constexpr std::size_t kPerRuleCap = 8;

bool rank_ok(Rank r, int num_ranks) { return r >= 0 && r < num_ranks; }

}  // namespace

TraceLintSink::TraceLintSink(std::string source, Seconds duration_hint)
    : source_(std::move(source)), duration_(duration_hint) {}

void TraceLintSink::emit(std::string_view rule, long index,
                         std::string message, std::string fixit) {
  auto& count = counts_[std::string(rule)];
  ++count;
  if (count > kPerRuleCap) return;  // Tallied at on_end().
  SourceContext context;
  context.source = source_;
  context.index = index;
  report_.add(RuleRegistry::instance().make(rule, std::move(context),
                                            std::move(message),
                                            std::move(fixit)));
}

std::uint64_t TraceLintSink::pair_key(Rank src, Rank dst) const {
  return static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(n_) +
         static_cast<std::uint64_t>(dst);
}

void TraceLintSink::on_begin(std::string_view app_name, int num_ranks) {
  app_name_ = std::string(app_name);
  n_ = num_ranks;
  report_ = LintReport{};
  p2p_index_ = 0;
  coll_index_ = 0;
  counts_.clear();
  last_time_.clear();
  pair_bytes_.clear();
}

void TraceLintSink::on_p2p(const trace::P2PEvent& e) {
  const long index = p2p_index_++;
  const std::string where = "p2p event #" + std::to_string(index);
  if (!rank_ok(e.src, n_) || !rank_ok(e.dst, n_)) {
    emit("TR001", index,
         where + ": rank pair (" + std::to_string(e.src) + ", " +
             std::to_string(e.dst) + ") outside [0, " + std::to_string(n_) +
             ")");
    return;
  }
  if (e.src == e.dst) {
    emit("TR002", index,
         where + ": rank " + std::to_string(e.src) +
             " sends to itself; self-messages never enter the network",
         "drop the event or fix the destination rank");
  }
  if (e.bytes == 0) {
    emit("TR003", index,
         where + ": zero-byte transfer " + std::to_string(e.src) + " -> " +
             std::to_string(e.dst),
         "zero-byte sends still cost a packet (Eq. 3); confirm intent");
  }
  if (e.time < 0.0 || !std::isfinite(e.time)) {
    emit("TR004", index,
         where + ": event time " + std::to_string(e.time) +
             " is negative or non-finite");
  } else {
    if (duration_ > 0.0 && e.time > duration_) {
      emit("TR008", index,
           where + ": time " + std::to_string(e.time) +
               " exceeds the trace duration " + std::to_string(duration_),
           "re-derive the duration or re-normalize event times");
    }
    // Traces only promise event order within one (src, dst) stream:
    // importers append a rank's calls in file order, while generators
    // group events pair by pair, so a per-source check would flag every
    // multi-neighbour workload.
    const std::uint64_t key = pair_key(e.src, e.dst);
    const auto it = last_time_.find(key);
    if (it != last_time_.end() && e.time < it->second) {
      emit("TR005", index,
           where + ": walltime went backwards on pair (" +
               std::to_string(e.src) + ", " + std::to_string(e.dst) + ") (" +
               std::to_string(e.time) + " after " +
               std::to_string(it->second) + ")");
    }
    last_time_[key] =
        std::max(e.time, it == last_time_.end() ? e.time : it->second);
    if (e.src != e.dst) pair_bytes_[key] += e.bytes;
  }
}

void TraceLintSink::on_collective(const trace::CollectiveEvent& e) {
  const long index = coll_index_++;
  const std::string where = "collective #" + std::to_string(index);
  if (!rank_ok(e.root, n_)) {
    emit("TR001", index,
         where + ": root rank " + std::to_string(e.root) + " outside [0, " +
             std::to_string(n_) + ")");
  }
  if (e.time < 0.0 || !std::isfinite(e.time)) {
    emit("TR004", index,
         where + ": event time " + std::to_string(e.time) +
             " is negative or non-finite");
  } else if (duration_ > 0.0 && e.time > duration_) {
    emit("TR008", index,
         where + ": time " + std::to_string(e.time) +
             " exceeds the trace duration " + std::to_string(duration_));
  }
}

void TraceLintSink::on_end(Seconds /*duration*/) {
  if (p2p_index_ == 0 && coll_index_ == 0) {
    emit("TR009", -1, "trace '" + app_name_ + "' carries no events",
         "check the importer filters (communicators, call subset)");
  }

  // TR006: pairs whose whole p2p volume flows one way. Most paper
  // workloads exchange bidirectionally; a silent one-way pair usually
  // means a dropped rank file or a filtered receive side.
  for (const auto& [key, bytes] : pair_bytes_) {
    const Rank src = static_cast<Rank>(key / static_cast<std::uint64_t>(n_));
    const Rank dst = static_cast<Rank>(key % static_cast<std::uint64_t>(n_));
    if (src > dst) continue;  // Judge each unordered pair once.
    const auto back = pair_bytes_.find(pair_key(dst, src));
    const Bytes forward = bytes;
    const Bytes reverse = back == pair_bytes_.end() ? 0 : back->second;
    if ((forward == 0) != (reverse == 0)) {
      const Rank sender = forward > 0 ? src : dst;
      const Rank receiver = forward > 0 ? dst : src;
      emit("TR006", -1,
           "pair (" + std::to_string(sender) + ", " +
               std::to_string(receiver) + "): " +
               std::to_string(forward + reverse) +
               " bytes flow one way with no return traffic");
    }
  }

  // "... and N more" records for rules that overflowed the cap.
  for (const auto& [rule, count] : counts_) {
    if (count <= kPerRuleCap) continue;
    SourceContext context;
    context.source = source_;
    report_.add(RuleRegistry::instance().make(
        rule, std::move(context),
        "... and " + std::to_string(count - kPerRuleCap) +
            " more findings of this rule"));
  }
}

LintReport TraceLintSink::take() {
  LintReport result = std::move(report_);
  report_ = LintReport{};
  counts_.clear();
  last_time_.clear();
  pair_bytes_.clear();
  p2p_index_ = 0;
  coll_index_ = 0;
  return result;
}

LintReport lint_trace(const trace::Trace& trace, const std::string& source) {
  // Replayed inline rather than via trace::emit(): netloc_trace links
  // against this library, so the lint pack cannot call back into it.
  TraceLintSink sink(source, trace.duration());
  sink.on_begin(trace.app_name(), trace.num_ranks());
  for (const auto& e : trace.p2p()) sink.on_p2p(e);
  for (const auto& e : trace.collectives()) sink.on_collective(e);
  sink.on_end(trace.duration());
  return sink.take();
}

Diagnostic trace_load_failure(const std::string& source,
                              const std::string& what) {
  SourceContext context;
  context.source = source;
  return RuleRegistry::instance().make(
      "TR007", std::move(context), what,
      "re-export the trace; dumpi-lite readers validate checksums");
}

}  // namespace netloc::lint
