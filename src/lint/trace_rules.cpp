#include "netloc/lint/trace_rules.hpp"

#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "netloc/lint/registry.hpp"

namespace netloc::lint {

namespace {

/// Emits through the registry with a per-rule cap so one systematic
/// defect (e.g. every event self-addressed) yields a handful of
/// representative diagnostics plus a tally, not millions of lines.
class Emitter {
 public:
  static constexpr std::size_t kPerRuleCap = 8;

  Emitter(LintReport& report, std::string source)
      : report_(report), source_(std::move(source)) {}

  void emit(std::string_view rule, long index, std::string message,
            std::string fixit = {}) {
    auto& count = counts_[std::string(rule)];
    ++count;
    if (count > kPerRuleCap) return;  // Tallied in finish().
    SourceContext context;
    context.source = source_;
    context.index = index;
    report_.add(RuleRegistry::instance().make(rule, std::move(context),
                                              std::move(message),
                                              std::move(fixit)));
  }

  /// Emit "... and N more" records for rules that overflowed the cap.
  void finish() {
    for (const auto& [rule, count] : counts_) {
      if (count <= kPerRuleCap) continue;
      SourceContext context;
      context.source = source_;
      report_.add(RuleRegistry::instance().make(
          rule, std::move(context),
          "... and " + std::to_string(count - kPerRuleCap) +
              " more findings of this rule"));
    }
  }

 private:
  LintReport& report_;
  std::string source_;
  std::unordered_map<std::string, std::size_t> counts_;
};

bool rank_ok(Rank r, int num_ranks) { return r >= 0 && r < num_ranks; }

}  // namespace

LintReport lint_trace(const trace::Trace& trace, const std::string& source) {
  LintReport report;
  Emitter emit(report, source);
  const int n = trace.num_ranks();
  const Seconds duration = trace.duration();

  if (trace.empty()) {
    emit.emit("TR009", -1,
              "trace '" + trace.app_name() + "' carries no events",
              "check the importer filters (communicators, call subset)");
  }

  // Per-pair walltime monotonicity state and per-pair volumes for the
  // asymmetry rule. Traces only promise event order within one (src, dst)
  // stream: importers append a rank's calls in file order, while
  // generators group events pair by pair, so a per-source check would
  // flag every multi-neighbour workload.
  std::unordered_map<std::uint64_t, Seconds> last_time;
  std::unordered_map<std::uint64_t, Bytes> pair_bytes;
  const auto pair_key = [n](Rank src, Rank dst) {
    return static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(dst);
  };

  long index = 0;
  for (const auto& e : trace.p2p()) {
    const std::string where = "p2p event #" + std::to_string(index);
    if (!rank_ok(e.src, n) || !rank_ok(e.dst, n)) {
      emit.emit("TR001", index,
                where + ": rank pair (" + std::to_string(e.src) + ", " +
                    std::to_string(e.dst) + ") outside [0, " +
                    std::to_string(n) + ")");
      ++index;
      continue;
    }
    if (e.src == e.dst) {
      emit.emit("TR002", index,
                where + ": rank " + std::to_string(e.src) +
                    " sends to itself; self-messages never enter the network",
                "drop the event or fix the destination rank");
    }
    if (e.bytes == 0) {
      emit.emit("TR003", index,
                where + ": zero-byte transfer " + std::to_string(e.src) +
                    " -> " + std::to_string(e.dst),
                "zero-byte sends still cost a packet (Eq. 3); confirm intent");
    }
    if (e.time < 0.0 || !std::isfinite(e.time)) {
      emit.emit("TR004", index,
                where + ": event time " + std::to_string(e.time) +
                    " is negative or non-finite");
    } else {
      if (duration > 0.0 && e.time > duration) {
        emit.emit("TR008", index,
                  where + ": time " + std::to_string(e.time) +
                      " exceeds the trace duration " + std::to_string(duration),
                  "re-derive the duration or re-normalize event times");
      }
      const std::uint64_t key = pair_key(e.src, e.dst);
      const auto it = last_time.find(key);
      if (it != last_time.end() && e.time < it->second) {
        emit.emit("TR005", index,
                  where + ": walltime went backwards on pair (" +
                      std::to_string(e.src) + ", " + std::to_string(e.dst) +
                      ") (" + std::to_string(e.time) + " after " +
                      std::to_string(it->second) + ")");
      }
      last_time[key] = std::max(
          e.time, it == last_time.end() ? e.time : it->second);
      if (e.src != e.dst) pair_bytes[pair_key(e.src, e.dst)] += e.bytes;
    }
    ++index;
  }

  index = 0;
  for (const auto& e : trace.collectives()) {
    const std::string where = "collective #" + std::to_string(index);
    if (!rank_ok(e.root, n)) {
      emit.emit("TR001", index,
                where + ": root rank " + std::to_string(e.root) +
                    " outside [0, " + std::to_string(n) + ")");
    }
    if (e.time < 0.0 || !std::isfinite(e.time)) {
      emit.emit("TR004", index,
                where + ": event time " + std::to_string(e.time) +
                    " is negative or non-finite");
    } else if (duration > 0.0 && e.time > duration) {
      emit.emit("TR008", index,
                where + ": time " + std::to_string(e.time) +
                    " exceeds the trace duration " + std::to_string(duration));
    }
    ++index;
  }

  // TR006: pairs whose whole p2p volume flows one way. Most paper
  // workloads exchange bidirectionally; a silent one-way pair usually
  // means a dropped rank file or a filtered receive side.
  for (const auto& [key, bytes] : pair_bytes) {
    const Rank src = static_cast<Rank>(key / static_cast<std::uint64_t>(n));
    const Rank dst = static_cast<Rank>(key % static_cast<std::uint64_t>(n));
    if (src > dst) continue;  // Judge each unordered pair once.
    const auto back = pair_bytes.find(pair_key(dst, src));
    const Bytes forward = bytes;
    const Bytes reverse = back == pair_bytes.end() ? 0 : back->second;
    if ((forward == 0) != (reverse == 0)) {
      const Rank sender = forward > 0 ? src : dst;
      const Rank receiver = forward > 0 ? dst : src;
      emit.emit("TR006", -1,
                "pair (" + std::to_string(sender) + ", " +
                    std::to_string(receiver) + "): " +
                    std::to_string(forward + reverse) +
                    " bytes flow one way with no return traffic");
    }
  }

  emit.finish();
  return report;
}

Diagnostic trace_load_failure(const std::string& source,
                              const std::string& what) {
  SourceContext context;
  context.source = source;
  return RuleRegistry::instance().make(
      "TR007", std::move(context), what,
      "re-export the trace; dumpi-lite readers validate checksums");
}

}  // namespace netloc::lint
