#include "netloc/lint/registry.hpp"

#include <string>

#include "netloc/common/error.hpp"

namespace netloc::lint {

namespace {

// The complete rule table. Keep IDs sorted within each pack; never
// reuse a retired ID (stored CSV reports reference them).
constexpr RuleInfo kRules[] = {
    // ---- trace pack ------------------------------------------------------
    {"TR001", Severity::Error, "trace", "event rank outside [0, num_ranks)"},
    {"TR002", Severity::Warning, "trace", "self-message (src == dst)"},
    {"TR003", Severity::Warning, "trace", "zero-byte p2p event"},
    {"TR004", Severity::Error, "trace", "negative or non-finite event time"},
    {"TR005", Severity::Warning, "trace",
     "walltime not monotonic within one (src, dst) stream"},
    {"TR006", Severity::Note, "trace",
     "one-directional p2p volume between a rank pair"},
    {"TR007", Severity::Error, "trace",
     "truncated or unparseable trace input"},
    {"TR008", Severity::Warning, "trace",
     "event timestamp beyond the recorded duration"},
    {"TR009", Severity::Warning, "trace", "trace carries no events"},
    {"TR010", Severity::Warning, "trace",
     "unparseable dumpi parameter line dropped"},
    {"TR011", Severity::Note, "trace",
     "on_end duration disagrees with the windowing duration known up "
     "front; time windows may be skewed"},
    // ---- config pack -----------------------------------------------------
    {"TP001", Severity::Error, "config",
     "topology cannot host the rank count"},
    {"TP002", Severity::Warning, "config",
     "topology node count exceeds the rank count (idle nodes)"},
    {"TP003", Severity::Error, "config",
     "fat-tree radix not even (up/down port split impossible)"},
    {"TP004", Severity::Error, "config",
     "dragonfly a*h odd (palm-tree pairing impossible)"},
    {"TP005", Severity::Warning, "config",
     "dragonfly off the balanced a = 2h = 2p rule"},
    {"TP006", Severity::Error, "config",
     "mapping entry out of [0, num_nodes)"},
    {"TP007", Severity::Error, "config",
     "mapping missing or duplicate rank (non-bijective)"},
    {"TP008", Severity::Error, "config",
     "ranks on one node exceed cores-per-node capacity"},
    {"TP009", Severity::Warning, "config",
     "mapping rank count differs from the trace rank count"},
    {"TP010", Severity::Error, "config", "non-positive topology parameter"},
    {"TP011", Severity::Error, "config", "unparseable rankfile line"},
    {"TP012", Severity::Error, "config",
     "topology graph inconsistent with num_links/link_is_global"},
    {"TP013", Severity::Warning, "config",
     "link fault mask disconnects the endpoint set"},
    {"TP014", Severity::Error, "config",
     "placement oversubscribes a socket or core slot"},
    {"TP015", Severity::Warning, "config",
     "congestion window count aliases the trace's burst structure "
     "(more windows than timed events)"},
    // ---- metric pack -----------------------------------------------------
    {"MT001", Severity::Error, "metric",
     "traffic-matrix totals disagree with the cell sums"},
    {"MT002", Severity::Warning, "metric",
     "traffic-matrix diagonal carries volume"},
    {"MT003", Severity::Warning, "metric",
     "rank sends traffic but receives none (or vice versa)"},
    {"MT004", Severity::Error, "metric",
     "utilization above 100% (Eq. 5 misconfiguration)"},
    {"MT005", Severity::Warning, "metric",
     "utilization is zero although the trace moves bytes"},
    {"MT006", Severity::Warning, "metric",
     "zero-duration trace carries timed events; windowed congestion "
     "collapses to a single rate-free window"},
    {"MT007", Severity::Warning, "metric",
     "congestion hot-link threshold at or above link capacity; the "
     "hot set degenerates to outright exceedance"},
    // ---- engine pack -----------------------------------------------------
    {"EN001", Severity::Warning, "engine",
     "cached result blob corrupt or unreadable; row recomputed"},
    {"EN002", Severity::Note, "engine",
     "cache blob written by an incompatible engine version; ignored"},
    {"EN003", Severity::Note, "engine",
     "result cache over its size cap; least-recently-used blobs evicted"},
    {"EN004", Severity::Note, "engine",
     "cache directory lock contended; store+trim waited for another writer"},
    {"EN005", Severity::Note, "engine",
     "distance-table misses dominate; most hop queries fell back to "
     "closed-form/BFS outside the plan window"},
    // ---- verify pack (netloc::verify cross-artifact passes) --------------
    {"VF001", Severity::Error, "verify",
     "network graph structure inconsistent (adjacency, id space, symmetry)"},
    {"VF002", Severity::Error, "verify",
     "graph degree/regularity off the topology family's invariant"},
    {"VF003", Severity::Error, "verify",
     "endpoint set disconnected although no links are failed"},
    {"VF004", Severity::Error, "verify",
     "route traverses an absent, masked or non-incident link"},
    {"VF005", Severity::Error, "verify",
     "route length disagrees with the plan's distance table"},
    {"VF006", Severity::Error, "verify",
     "plan distance inconsistent with graph BFS"},
    {"VF007", Severity::Error, "verify",
     "ECMP link shares do not split unit flow"},
    {"VF008", Severity::Error, "verify",
     "ECMP flow not conserved at an intermediate vertex"},
    {"VF009", Severity::Error, "verify",
     "fault-mask accounting wrong (usable_links / disconnected flag)"},
    {"VF010", Severity::Error, "verify",
     "unroutable-pair accounting disagrees with graph reachability"},
    {"VF011", Severity::Error, "verify",
     "metric recomputation from routes x packets disagrees with stored result"},
    {"VF012", Severity::Warning, "verify",
     "result-cache blob corrupt, truncated, mis-keyed or version-skewed"},
    {"VF013", Severity::Note, "verify",
     "result-cache blob orphaned by the current catalog/options"},
    {"VF014", Severity::Error, "verify", "task graph has a dependency cycle"},
    {"VF015", Severity::Note, "verify",
     "task graph job is isolated (no edges in a multi-job graph)"},
    {"VF016", Severity::Error, "verify",
     "traffic-matrix invariant violated (bounds, totals, packetization)"},
    {"VF017", Severity::Error, "verify",
     "tiled traffic re-accumulation diverges from the original matrix"},
    {"VF018", Severity::Error, "verify",
     "placement inconsistent (coordinates, occupancy, flat view) or "
     "hierarchical collective volume not conserved"},
    {"VF019", Severity::Error, "verify",
     "per-window traffic/link loads do not sum to the aggregate "
     "(windowed conservation law violated)"},
};

}  // namespace

RuleRegistry::RuleRegistry()
    : rules_(std::begin(kRules), std::end(kRules)) {}

const RuleRegistry& RuleRegistry::instance() {
  static const RuleRegistry registry;
  return registry;
}

const RuleInfo* RuleRegistry::find(std::string_view id) const {
  for (const auto& rule : rules_) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

std::vector<RuleInfo> RuleRegistry::pack(std::string_view name) const {
  std::vector<RuleInfo> out;
  for (const auto& rule : rules_) {
    if (rule.pack == name) out.push_back(rule);
  }
  return out;
}

Diagnostic RuleRegistry::make(std::string_view id, SourceContext context,
                              std::string message, std::string fixit) const {
  const RuleInfo* rule = find(id);
  if (rule == nullptr) {
    throw ConfigError("lint: unknown rule ID '" + std::string(id) + "'");
  }
  Diagnostic d;
  d.rule_id = std::string(rule->id);
  d.severity = rule->default_severity;
  d.context = std::move(context);
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

}  // namespace netloc::lint
