#include "netloc/engine/sweep.hpp"

#include <chrono>
#include <memory>
#include <optional>

#include "netloc/common/error.hpp"
#include "netloc/engine/result_cache.hpp"
#include "netloc/lint/registry.hpp"
#include "netloc/engine/task_graph.hpp"
#include "netloc/mapping/mapping.hpp"
#include "netloc/metrics/traffic_matrix.hpp"
#include "netloc/metrics/utilization.hpp"
#include "netloc/metrics/windowed.hpp"
#include "netloc/topology/configs.hpp"

namespace netloc::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

/// Mutable state of one in-flight row, shared by its generate /
/// topology / finalize jobs. Only the owning jobs touch it, and the
/// task-graph edges order those accesses, so no locking is needed.
struct RowState {
  analysis::ExperimentRow row;
  std::shared_ptr<metrics::TrafficMatrix> full_matrix;
  /// Per-window matrices for the congestion cells; null unless the
  /// run's congestion analysis is enabled.
  std::shared_ptr<metrics::WindowedTraffic> windowed;
  topology::TopologySet topologies;
  int num_ranks = 0;
  Seconds duration = 0.0;
};

/// Sink adapter for the timed flow sweep: p2p events become flows as
/// they stream past (collectives are skipped, matching the p2p-only
/// matrix the untimed mode feeds). Also captures the duration the
/// static-utilization baseline needs; generators always pass an
/// explicit duration at on_end().
class FlowFeedSink final : public trace::EventSink {
 public:
  explicit FlowFeedSink(simulation::FlowSimulator* sim) : sim_(sim) {}

  void on_begin(std::string_view /*app_name*/, int /*num_ranks*/) override {}
  void on_p2p(const trace::P2PEvent& e) override {
    if (sim_ != nullptr) sim_->add_flow(e.src, e.dst, e.bytes, e.time);
  }
  void on_collective(const trace::CollectiveEvent& /*event*/) override {}
  void on_end(Seconds duration) override { duration_ = duration; }

  [[nodiscard]] Seconds duration() const { return duration_; }

 private:
  simulation::FlowSimulator* sim_;
  Seconds duration_ = 0.0;
};

}  // namespace

SweepEngine::SweepEngine(SweepOptions options) : options_(std::move(options)) {
  if (options_.jobs < 0) {
    throw ConfigError("SweepEngine: jobs must be >= 0");
  }
}

std::shared_ptr<const topology::RoutePlan> SweepEngine::plan_for(
    const topology::Topology& topo, int window) {
  // A memory budget tiers the distance table: the plan gets the
  // docs/SCALE.md share (budget/8) and pairs beyond the affordable
  // window fall back to closed-form/BFS distances, counted per plan
  // (out_of_window_hits) and surfaced as EN005 when they dominate.
  if (options_.run.memory_budget_bytes > 0) {
    window = std::min(
        window, topology::RoutePlan::window_for_budget(
                    topo.num_nodes(), options_.run.memory_budget_bytes / 8));
  }
  // The key carries the window because two rank counts may share a
  // Table 2 configuration but need differently-sized distance tables,
  // and the routing label because one engine can serve sweeps under
  // different policies across its lifetime.
  std::string key =
      topo.name() + " " + topo.config_string() + "#" + std::to_string(window);
  if (!options_.run.routing.is_default()) {
    key += " @" + options_.run.routing.label();
  }
  common::MutexLock lock(plans_mutex_);
  if (const auto it = plans_.find(key); it != plans_.end()) {
    return it->second;
  }
  auto plan = topology::RoutePlan::build(topo, options_.run.routing, window);
  ++plans_built_;
  if (plan->self_contained()) {
    plans_.emplace(key, plan);
  }
  return plan;
}

std::int64_t SweepEngine::cached_plan_misses() const {
  std::int64_t sum = 0;
  for (const auto& [key, plan] : plans_) {
    sum += static_cast<std::int64_t>(plan->out_of_window_hits());
  }
  return sum;
}

void SweepEngine::reset_run_counters() {
  common::MutexLock lock(plans_mutex_);
  plans_built_ = 0;
  verify_findings_.store(0);
  hop_queries_.store(0);
  run_miss_base_ = cached_plan_misses();
}

void SweepEngine::fold_run_counters() {
  common::MutexLock lock(plans_mutex_);
  stats_.plans_built = plans_built_;
  stats_.verify_findings = verify_findings_.load();
  stats_.hop_queries = hop_queries_.load();
  stats_.out_of_window_queries = cached_plan_misses() - run_miss_base_;
}

void SweepEngine::finish_run(Clock::time_point begin) {
  fold_run_counters();
  stats_.wall_s = seconds_since(begin);
  // Fallback-dominated runs get one note per batch: the distance table
  // answered fewer than half the hop queries, so either the memory
  // budget or the plan window is undersized for this rank count.
  if (options_.observer != nullptr && stats_.hop_queries > 0 &&
      stats_.out_of_window_queries * 2 > stats_.hop_queries) {
    options_.observer->on_diagnostic(lint::RuleRegistry::instance().make(
        "EN005", {"sweep", -1, -1},
        std::to_string(stats_.out_of_window_queries) + " of " +
            std::to_string(stats_.hop_queries) +
            " hop queries fell outside the distance-table window",
        "raise RunOptions::memory_budget_bytes (the plan window gets "
        "budget/8) or pass a larger window"));
  }
  life_sweeps_.fetch_add(1, std::memory_order_relaxed);
  life_cells_.fetch_add(stats_.cells, std::memory_order_relaxed);
  life_cache_hits_.fetch_add(stats_.cache_hits, std::memory_order_relaxed);
  life_jobs_run_.fetch_add(stats_.jobs_run, std::memory_order_relaxed);
  life_plans_built_.fetch_add(stats_.plans_built, std::memory_order_relaxed);
  life_cache_evictions_.fetch_add(stats_.cache_evictions,
                                  std::memory_order_relaxed);
  life_verify_findings_.fetch_add(stats_.verify_findings,
                                  std::memory_order_relaxed);
  life_hop_queries_.fetch_add(stats_.hop_queries, std::memory_order_relaxed);
  life_oow_queries_.fetch_add(stats_.out_of_window_queries,
                              std::memory_order_relaxed);
  life_wall_us_.fetch_add(static_cast<std::int64_t>(stats_.wall_s * 1e6),
                          std::memory_order_relaxed);
}

LifetimeStats SweepEngine::lifetime_stats() const {
  LifetimeStats life;
  life.sweeps = life_sweeps_.load(std::memory_order_relaxed);
  life.cells = life_cells_.load(std::memory_order_relaxed);
  life.cache_hits = life_cache_hits_.load(std::memory_order_relaxed);
  life.jobs_run = life_jobs_run_.load(std::memory_order_relaxed);
  life.plans_built = life_plans_built_.load(std::memory_order_relaxed);
  life.cache_evictions = life_cache_evictions_.load(std::memory_order_relaxed);
  life.verify_findings = life_verify_findings_.load(std::memory_order_relaxed);
  life.hop_queries = life_hop_queries_.load(std::memory_order_relaxed);
  life.out_of_window_queries = life_oow_queries_.load(std::memory_order_relaxed);
  life.wall_s =
      static_cast<double>(life_wall_us_.load(std::memory_order_relaxed)) / 1e6;
  return life;
}

void SweepEngine::verify_cell(const CellArtifacts& artifacts) {
  if (!options_.post_cell_verify) return;
  const lint::LintReport report = options_.post_cell_verify(artifacts);
  // The verifier's metric recompute re-queries one distance per stored
  // pair through the same shared plan; count those queries so the
  // EN005 miss/query ratio stays honest under post-cell verification
  // (the bounded route-walk samples are noise next to this term).
  if (artifacts.full_matrix != nullptr) {
    hop_queries_.fetch_add(
        static_cast<std::int64_t>(artifacts.full_matrix->nonzero_pairs()),
        std::memory_order_relaxed);
  }
  if (report.empty()) return;
  verify_findings_.fetch_add(static_cast<int>(report.diagnostics().size()));
  if (options_.observer) {
    for (const auto& diagnostic : report.diagnostics()) {
      options_.observer->on_diagnostic(diagnostic);
    }
  }
}

std::vector<analysis::ExperimentRow> SweepEngine::run_rows(
    const std::vector<workloads::CatalogEntry>& entries) {
  const auto begin = Clock::now();
  stats_ = SweepStats{};
  reset_run_counters();
  stats_.cells = static_cast<int>(entries.size());

  std::vector<analysis::ExperimentRow> rows(entries.size());

  // Cache prescan (serial: a probe is one small file read). Rows served
  // here contribute zero jobs to the graph — a fully warm sweep
  // performs no recomputation at all.
  std::optional<ResultCache> cache;
  if (!options_.cache_dir.empty()) {
    cache.emplace(options_.cache_dir, options_.observer,
                  options_.cache_max_bytes);
  }
  std::vector<CacheKey> keys(entries.size());
  std::vector<bool> need(entries.size(), true);
  if (cache) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      keys[i] = result_cache_key(entries[i], options_.run);
      if (auto row = cache->load(keys[i])) {
        rows[i] = std::move(*row);
        need[i] = false;
        ++stats_.cache_hits;
      }
    }
  }

  TaskGraph graph;
  std::vector<std::unique_ptr<RowState>> states(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!need[i]) continue;
    states[i] = std::make_unique<RowState>();
    RowState* state = states[i].get();
    const workloads::CatalogEntry* entry = &entries[i];
    const analysis::RunOptions run = options_.run;

    // Stream the generator into everything every topology job shares:
    // the full traffic matrix, the MPI-level metrics and the Table 2
    // topology set — one pass, no event vector (streaming generators
    // emit straight into the accumulator tee). Each job owns its PRNG
    // stream — the generator seeds from (entry, seed) internally and
    // shares nothing.
    const JobId generate = graph.add(
        entry->label(), "generate", [state, entry, run] {
          const auto& gen = workloads::generator(entry->app);
          auto analysis = analysis::analyze_stream(
              [&gen, entry, run](trace::EventSink& sink) {
                gen.generate_into(*entry, run.seed, sink);
              },
              *entry, run, /*want_full_matrix=*/true);
          state->row = std::move(analysis.row);
          state->full_matrix = std::move(analysis.full_matrix);
          state->windowed = std::move(analysis.windowed);
          state->num_ranks = state->row.stats.num_ranks;
          state->duration = state->row.stats.duration;
          state->topologies = topology::topologies_for(state->num_ranks);
        });

    // Fan out: one route + metrics job per topology.
    ResultCache* cache_ptr = cache ? &*cache : nullptr;
    const JobId finalize = graph.add(
        entry->label(), "finalize", [state, i, &keys, cache_ptr] {
          state->full_matrix.reset();
          state->windowed.reset();
          state->topologies = {};
          if (cache_ptr) cache_ptr->store(keys[i], state->row);
        });
    for (std::size_t t = 0; t < state->row.topologies.size(); ++t) {
      const JobId cell = graph.add(
          entry->label(), "topology", [this, state, entry, t, run] {
            // One plan per (configuration, rank window), shared across
            // every cell of the sweep that uses it. The linear mapping
            // only places ranks on nodes [0, num_ranks), so that window
            // covers all distance queries from the table.
            const auto& topo = *state->topologies.all()[t];
            const auto plan = plan_for(topo, state->num_ranks);
            state->row.topologies[t] = analysis::analyze_topology(
                *state->full_matrix, topo, state->num_ranks, state->duration,
                run, plan.get(), state->windowed.get());
            // One hop-distance query per stored pair; paired with the
            // plans' out_of_window_hits() growth this run to flag
            // fallback-dominated windows (EN005).
            hop_queries_.fetch_add(
                static_cast<std::int64_t>(state->full_matrix->nonzero_pairs()),
                std::memory_order_relaxed);
            // Opt-in verification while the cell's artifacts are still
            // alive; findings flow to the observer, never abort.
            CellArtifacts artifacts;
            artifacts.entry = entry;
            artifacts.topology = &topo;
            artifacts.plan = plan;
            artifacts.full_matrix = state->full_matrix.get();
            artifacts.windowed = state->windowed.get();
            artifacts.num_ranks = state->num_ranks;
            artifacts.duration = state->duration;
            artifacts.result = &state->row.topologies[t];
            artifacts.run = run;
            verify_cell(artifacts);
          });
      graph.add_edge(generate, cell);
      graph.add_edge(cell, finalize);
    }
  }

  stats_.jobs_run = static_cast<int>(graph.size());
  if (graph.size() > 0) {
    // Touch the lazily initialized registries once, before threads
    // fan out (they are magic statics, this just keeps first-use
    // timing out of the per-job measurements).
    (void)workloads::available_workloads();
    ThreadPool pool(options_.jobs);
    graph.run(pool, options_.observer);
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (states[i]) rows[i] = std::move(states[i]->row);
  }

  if (cache) stats_.cache_evictions = static_cast<int>(cache->evictions());
  finish_run(begin);
  return rows;
}

std::vector<analysis::ExperimentRow> SweepEngine::run_catalog() {
  return run_rows(workloads::catalog());
}

std::vector<analysis::DimensionalityRow> SweepEngine::run_dimensionality(
    const std::vector<workloads::CatalogEntry>& entries) {
  const auto begin = Clock::now();
  stats_ = SweepStats{};
  reset_run_counters();
  stats_.cells = static_cast<int>(entries.size());

  std::vector<analysis::DimensionalityRow> rows(entries.size());
  TaskGraph graph;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const workloads::CatalogEntry* entry = &entries[i];
    const std::uint64_t seed = options_.run.seed;
    graph.add(entry->label(), "study", [&rows, i, entry, seed] {
      const auto& gen = workloads::generator(entry->app);
      rows[i] = analysis::dimensionality_study_stream(
          [&gen, entry, seed](trace::EventSink& sink) {
            gen.generate_into(*entry, seed, sink);
          },
          entry->label());
    });
  }
  stats_.jobs_run = static_cast<int>(graph.size());
  if (graph.size() > 0) {
    (void)workloads::available_workloads();
    ThreadPool pool(options_.jobs);
    graph.run(pool, options_.observer);
  }
  finish_run(begin);
  return rows;
}

std::vector<analysis::MulticoreSeries> SweepEngine::run_multicore(
    const std::vector<workloads::CatalogEntry>& entries,
    const std::vector<int>& cores_per_node) {
  std::vector<mapping::MachineModel> machines;
  machines.reserve(cores_per_node.size());
  for (const int cores : cores_per_node) {
    machines.push_back(mapping::MachineModel::degenerate(cores));
  }
  return run_multicore(entries, machines);
}

std::vector<analysis::MulticoreSeries> SweepEngine::run_multicore(
    const std::vector<workloads::CatalogEntry>& entries,
    const std::vector<mapping::MachineModel>& machines) {
  const auto begin = Clock::now();
  stats_ = SweepStats{};
  reset_run_counters();
  stats_.cells = static_cast<int>(entries.size());

  std::vector<analysis::MulticoreSeries> rows(entries.size());
  TaskGraph graph;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const workloads::CatalogEntry* entry = &entries[i];
    const std::uint64_t seed = options_.run.seed;
    graph.add(entry->label(), "study", [&rows, i, entry, seed, &machines] {
      const auto& gen = workloads::generator(entry->app);
      rows[i] = analysis::multicore_study_stream(
          [&gen, entry, seed](trace::EventSink& sink) {
            gen.generate_into(*entry, seed, sink);
          },
          entry->label(), machines);
    });
  }
  stats_.jobs_run = static_cast<int>(graph.size());
  if (graph.size() > 0) {
    (void)workloads::available_workloads();
    ThreadPool pool(options_.jobs);
    graph.run(pool, options_.observer);
  }
  finish_run(begin);
  return rows;
}

std::vector<FlowSweepResult> SweepEngine::run_flow_sweep(
    const std::vector<FlowSweepSpec>& specs) {
  const auto begin = Clock::now();
  stats_ = SweepStats{};
  reset_run_counters();
  stats_.cells = static_cast<int>(specs.size());

  std::vector<FlowSweepResult> results(specs.size());
  TaskGraph graph;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const FlowSweepSpec* spec = &specs[i];
    const std::uint64_t seed = options_.run.seed;
    graph.add(spec->app + "/" + std::to_string(spec->ranks), "flow",
              [this, &results, i, spec, seed] {
      const auto& entry = workloads::catalog_entry(spec->app, spec->ranks);
      const auto set = topology::topologies_for(spec->ranks);
      const auto mapping =
          mapping::Mapping::linear(spec->ranks, set.torus->num_nodes());
      simulation::FlowSimulator sim(*set.torus, mapping, {},
                                    plan_for(*set.torus, spec->ranks));

      // One generator pass feeds both the p2p matrix (utilization
      // baseline, untimed flows) and — in timed mode — the simulator
      // directly, event by event.
      metrics::TrafficAccumulator accumulator(
          {.include_p2p = true, .include_collectives = false});
      FlowFeedSink flows(spec->timed ? &sim : nullptr);
      trace::SinkTee tee;
      tee.add(accumulator);
      tee.add(flows);
      workloads::generator(spec->app).generate_into(entry, seed, tee);

      const auto matrix = accumulator.take();
      if (!spec->timed) sim.add_matrix(matrix);

      FlowSweepResult& out = results[i];
      out.label = spec->app + "/" + std::to_string(spec->ranks);
      out.flows = sim.flow_count();
      out.report = sim.run();
      out.static_utilization_percent =
          metrics::utilization(matrix, *set.torus, mapping, flows.duration())
              .utilization_percent;
    });
  }
  stats_.jobs_run = static_cast<int>(graph.size());
  if (graph.size() > 0) {
    (void)workloads::available_workloads();
    ThreadPool pool(options_.jobs);
    graph.run(pool, options_.observer);
  }
  finish_run(begin);
  return results;
}

}  // namespace netloc::engine

namespace netloc::analysis {

std::vector<ExperimentRow> run_all(const RunOptions& options) {
  engine::SweepOptions sweep;
  sweep.run = options;
  engine::SweepEngine eng(sweep);
  return eng.run_catalog();
}

}  // namespace netloc::analysis
