#include "netloc/engine/result_cache.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>
#include <vector>

#if defined(_WIN32)
#include <process.h>
#else
#include <cerrno>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "netloc/common/binary_io.hpp"
#include "netloc/lint/registry.hpp"
#include "netloc/topology/configs.hpp"

namespace netloc::engine {

namespace {

constexpr char kMagic[4] = {'N', 'L', 'R', 'C'};

/// Blob carries a version the key already encodes; a mismatch can only
/// mean a file copied across engine versions, reported as EN002 (note)
/// instead of EN001 (corruption).
class CacheVersionMismatch final : public CacheFormatError {
 public:
  explicit CacheVersionMismatch(const std::string& what)
      : CacheFormatError(what) {}
};

using Writer = BinaryWriter;
using Reader = BinaryReader<CacheFormatError>;

void put_topology_result(Writer& w, const analysis::TopologyResult& r) {
  w.put_string(r.topology);
  w.put_string(r.config);
  w.put<Count>(r.packet_hops);
  w.put<double>(r.avg_hops);
  w.put<double>(r.utilization_percent);
  w.put<double>(r.utilization_used_links_percent);
  w.put<std::int32_t>(r.used_links);
  w.put<double>(r.global_link_packet_share);
}

analysis::TopologyResult get_topology_result(Reader& r) {
  analysis::TopologyResult result;
  result.topology = r.get_string("topology name");
  result.config = r.get_string("topology config");
  result.packet_hops = r.get<Count>("packet hops");
  result.avg_hops = r.get<double>("avg hops");
  result.utilization_percent = r.get<double>("utilization");
  result.utilization_used_links_percent = r.get<double>("used-links utilization");
  result.used_links = r.get<std::int32_t>("used links");
  result.global_link_packet_share = r.get<double>("global link share");
  return result;
}

/// Blob format version carrying per-topology congestion summaries. The
/// base format stays 1 and is what congestion-free rows write, so every
/// pre-congestion blob remains readable AND every new default-options
/// blob remains readable by older engines. (kResultCacheVersion is the
/// semantic key version and is unchanged — congestion runs are already
/// re-keyed by the options block in result_cache_key.)
constexpr std::uint32_t kBlobVersionCongestion = 2;

bool row_has_congestion(const analysis::ExperimentRow& row) {
  for (const auto& topo : row.topologies) {
    if (topo.congestion.enabled) return true;
  }
  return false;
}

void put_congestion(Writer& w, const metrics::CongestionSummary& c) {
  w.put<std::uint8_t>(c.enabled ? 1 : 0);
  w.put<std::int32_t>(c.windows);
  w.put<double>(c.window_seconds);
  w.put<double>(c.threshold);
  w.put<std::int32_t>(c.hot_links);
  w.put<double>(c.hot_duration_p50_s);
  w.put<double>(c.hot_duration_p90_s);
  w.put<double>(c.hot_duration_max_s);
  w.put<double>(c.exceeded_window_fraction);
  w.put<double>(c.peak_offered_fraction);
  w.put<std::uint64_t>(c.hotspots.size());
  for (const auto& h : c.hotspots) {
    w.put<std::int32_t>(h.link);
    w.put<std::int32_t>(h.hot_windows);
    w.put<double>(h.peak_offered_fraction);
    w.put<std::uint8_t>(h.global ? 1 : 0);
  }
}

metrics::CongestionSummary get_congestion(Reader& r) {
  metrics::CongestionSummary c;
  c.enabled = r.get<std::uint8_t>("congestion enabled") != 0;
  c.windows = r.get<std::int32_t>("congestion windows");
  c.window_seconds = r.get<double>("window seconds");
  c.threshold = r.get<double>("congestion threshold");
  c.hot_links = r.get<std::int32_t>("hot links");
  c.hot_duration_p50_s = r.get<double>("hot duration p50");
  c.hot_duration_p90_s = r.get<double>("hot duration p90");
  c.hot_duration_max_s = r.get<double>("hot duration max");
  c.exceeded_window_fraction = r.get<double>("exceeded fraction");
  c.peak_offered_fraction = r.get<double>("peak offered fraction");
  const auto count = r.get<std::uint64_t>("hotspot count");
  // top_k hotspots per summary; anything huge means a corrupt blob.
  if (count > (std::uint64_t{1} << 20)) {
    throw CacheFormatError("cache blob hotspot count implausibly large");
  }
  c.hotspots.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    metrics::CongestionHotspot h;
    h.link = r.get<std::int32_t>("hotspot link");
    h.hot_windows = r.get<std::int32_t>("hotspot windows");
    h.peak_offered_fraction = r.get<double>("hotspot peak");
    h.global = r.get<std::uint8_t>("hotspot global") != 0;
    c.hotspots.push_back(h);
  }
  return c;
}

}  // namespace

std::string CacheKey::file_name() const {
  std::ostringstream name;
  name << std::hex << std::setw(16) << std::setfill('0') << hash << ".nlrc";
  return name.str();
}

CacheKey result_cache_key(const workloads::CatalogEntry& entry,
                          const analysis::RunOptions& options) {
  Fnv1aKey key;
  key.mix(std::string("netloc-result-cache"));
  key.mix<std::uint32_t>(kResultCacheVersion);
  // Workload id plus its calibration targets: recalibrating one
  // generator's Table 1 aggregates dirties exactly that app's rows.
  key.mix(entry.app);
  key.mix<std::int32_t>(entry.ranks);
  key.mix<std::int32_t>(entry.variant);
  key.mix<double>(entry.time_s);
  key.mix<double>(entry.volume_mb);
  key.mix<double>(entry.p2p_percent);
  key.mix<std::uint8_t>(entry.derived_datatypes ? 1 : 0);
  // Metric options.
  key.mix<std::uint64_t>(options.seed);
  key.mix<std::uint8_t>(options.link_accounting ? 1 : 0);
  // Table 2 topology parameters for this rank count: a changed config
  // table invalidates the affected scales only.
  const auto torus = topology::torus_dims_for(entry.ranks);
  for (const int d : torus) key.mix<std::int32_t>(d);
  key.mix<std::int32_t>(topology::kFatTreeRadix);
  key.mix<std::int32_t>(topology::fat_tree_stages_for(entry.ranks));
  const auto dragonfly = topology::dragonfly_params_for(entry.ranks);
  for (const int p : dragonfly) key.mix<std::int32_t>(p);
  // Routing policy. Mixed only when non-default so that every blob
  // written before routing policies existed keeps its key — a warm
  // default-path cache survives the upgrade.
  if (!options.routing.is_default()) {
    const auto spec = options.routing.normalized();
    key.mix(std::string("routing"));
    key.mix<std::uint8_t>(static_cast<std::uint8_t>(spec.kind));
    key.mix<std::uint64_t>(spec.failed_links.size());
    for (const LinkId l : spec.failed_links) key.mix<std::int32_t>(l);
  }
  // Memory budget. Results are byte-identical at any budget (tiling and
  // window sizing are caches, not semantics), but keying it keeps the
  // provenance of a stored row unambiguous. Mixed only when non-zero so
  // pre-budget blobs keep their keys, exactly like the routing block.
  if (options.memory_budget_bytes != 0) {
    key.mix(std::string("membudget"));
    key.mix<std::uint64_t>(options.memory_budget_bytes);
  }
  // Machine hierarchy and collective schedule. Both default to the
  // flat paper model; mixed only when non-default so every pre-existing
  // blob keeps its key, exactly like the routing block.
  if (!options.machine.is_flat()) {
    key.mix(std::string("machine"));
    key.mix<std::int32_t>(options.machine.sockets_per_node());
    key.mix<std::int32_t>(options.machine.cores_per_socket());
  }
  if (options.collective_algo != collectives::CollectiveAlgo::Flat) {
    key.mix(std::string("collalgo"));
    key.mix<std::uint8_t>(static_cast<std::uint8_t>(options.collective_algo));
  }
  // Windowed congestion analysis. Mixed only when enabled (windows > 0)
  // so every pre-congestion blob — and every congestion-free run —
  // keeps its key and stays warm.
  if (options.congestion.enabled()) {
    key.mix(std::string("congestion"));
    key.mix<std::int32_t>(options.congestion.windows);
    key.mix<double>(options.congestion.threshold);
    key.mix<std::int32_t>(options.congestion.top_k);
    key.mix<double>(options.congestion.bandwidth_bytes_per_s);
  }

  return CacheKey{key.value(), entry.label()};
}

void write_row_blob(const analysis::ExperimentRow& row, std::uint64_t key_hash,
                    std::ostream& out) {
  Writer w(out);
  w.put_bytes(kMagic, sizeof(kMagic));
  const std::uint32_t version =
      row_has_congestion(row) ? kBlobVersionCongestion : kResultCacheVersion;
  w.put<std::uint32_t>(version);
  w.put<std::uint64_t>(key_hash);

  const auto& e = row.entry;
  w.put_string(e.app);
  w.put<std::int32_t>(e.ranks);
  w.put<std::int32_t>(e.variant);
  w.put<double>(e.time_s);
  w.put<double>(e.volume_mb);
  w.put<double>(e.p2p_percent);
  w.put<std::uint8_t>(e.derived_datatypes ? 1 : 0);

  const auto& s = row.stats;
  w.put<std::int32_t>(s.num_ranks);
  w.put<double>(s.duration);
  w.put<Bytes>(s.p2p_volume);
  w.put<Bytes>(s.collective_volume);
  w.put<Count>(s.p2p_messages);
  w.put<Count>(s.collective_calls);

  w.put<std::uint8_t>(row.has_p2p ? 1 : 0);
  w.put<std::int32_t>(row.peers);
  w.put<double>(row.rank_distance);
  w.put<double>(row.selectivity_mean);
  w.put<double>(row.selectivity_max);

  for (const auto& topo : row.topologies) put_topology_result(w, topo);
  if (version == kBlobVersionCongestion) {
    for (const auto& topo : row.topologies) put_congestion(w, topo.congestion);
  }

  w.finish();
  if (!out) throw Error("cache blob write failed (I/O error)");
}

analysis::ExperimentRow read_row_blob(std::istream& in, std::uint64_t key_hash) {
  Reader r(in, "cache blob");
  char magic[4];
  r.get_bytes(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw CacheFormatError("bad cache blob magic (not a netloc result blob)");
  }
  const auto version = r.get<std::uint32_t>("version");
  if (version != kResultCacheVersion && version != kBlobVersionCongestion) {
    throw CacheVersionMismatch("cache blob version " + std::to_string(version) +
                               " does not match engine version " +
                               std::to_string(kResultCacheVersion));
  }
  const auto stored_key = r.get<std::uint64_t>("key hash");
  if (stored_key != key_hash) {
    throw CacheFormatError("cache blob key hash does not match its file name");
  }

  analysis::ExperimentRow row;
  auto& e = row.entry;
  e.app = r.get_string("app name");
  e.ranks = r.get<std::int32_t>("ranks");
  e.variant = r.get<std::int32_t>("variant");
  e.time_s = r.get<double>("time");
  e.volume_mb = r.get<double>("volume");
  e.p2p_percent = r.get<double>("p2p percent");
  e.derived_datatypes = r.get<std::uint8_t>("derived datatypes") != 0;

  auto& s = row.stats;
  s.num_ranks = r.get<std::int32_t>("stats ranks");
  s.duration = r.get<double>("stats duration");
  s.p2p_volume = r.get<Bytes>("p2p volume");
  s.collective_volume = r.get<Bytes>("collective volume");
  s.p2p_messages = r.get<Count>("p2p messages");
  s.collective_calls = r.get<Count>("collective calls");

  row.has_p2p = r.get<std::uint8_t>("has p2p") != 0;
  row.peers = r.get<std::int32_t>("peers");
  row.rank_distance = r.get<double>("rank distance");
  row.selectivity_mean = r.get<double>("selectivity mean");
  row.selectivity_max = r.get<double>("selectivity max");

  for (auto& topo : row.topologies) topo = get_topology_result(r);
  if (version == kBlobVersionCongestion) {
    for (auto& topo : row.topologies) topo.congestion = get_congestion(r);
  }

  r.verify_checksum();
  return row;
}

ResultCache::ResultCache(std::string dir, EngineObserver* observer,
                         std::uint64_t max_bytes)
    : dir_(std::move(dir)), observer_(observer), max_bytes_(max_bytes) {
  if (dir_.empty()) throw ConfigError("ResultCache: empty cache directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw Error("ResultCache: cannot create cache directory " + dir_ + ": " +
                ec.message());
  }
}

ResultCache::~ResultCache() {
#if !defined(_WIN32)
  common::MutexLock lock(store_mutex_);
  if (lock_fd_ >= 0) ::close(lock_fd_);
  lock_fd_ = -1;
#endif
}

void ResultCache::lock_directory(const std::string& label) {
#if defined(_WIN32)
  (void)label;  // No flock(): the in-process mutex is the only guard.
#else
  if (lock_fd_ < 0) {
    const auto path = std::filesystem::path(dir_) / ".lock";
    lock_fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (lock_fd_ < 0) {
      throw Error("ResultCache: cannot open lock file " + path.string());
    }
  }
  // Probe non-blocking first so contention is observable: another
  // process (or another ResultCache in this process, with its own fd)
  // is inside store+trim right now.
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) == 0) return;
  if (errno != EWOULDBLOCK && errno != EINTR) {
    throw Error("ResultCache: flock on " + dir_ + "/.lock failed");
  }
  ++lock_contentions_;
  if (observer_) {
    observer_->on_diagnostic(lint::RuleRegistry::instance().make(
        "EN004", {dir_, -1, -1},
        "cache directory lock contended while storing " + label +
            "; waiting for the concurrent store+trim to finish",
        "expected when daemons share a cache dir; stores stay correct, "
        "just serialized"));
  }
  while (::flock(lock_fd_, LOCK_EX) != 0) {
    if (errno != EINTR) {
      throw Error("ResultCache: flock on " + dir_ + "/.lock failed");
    }
  }
#endif
}

void ResultCache::unlock_directory() {
#if !defined(_WIN32)
  if (lock_fd_ >= 0) ::flock(lock_fd_, LOCK_UN);
#endif
}

std::optional<analysis::ExperimentRow> ResultCache::load(const CacheKey& key) {
  const auto path = std::filesystem::path(dir_) / key.file_name();
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // Plain miss: nothing to report.
  try {
    auto row = read_row_blob(in, key.hash);
    if (observer_) observer_->on_cache_hit(key.label);
    // Refresh recency so LRU trimming keeps hot entries. Best effort:
    // a read-only cache directory still serves hits.
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
    return row;
  } catch (const CacheVersionMismatch& e) {
    if (observer_) {
      observer_->on_diagnostic(lint::RuleRegistry::instance().make(
          "EN002", {path.string(), -1, -1}, e.what(),
          "delete the stale blob or re-run to overwrite it"));
    }
  } catch (const Error& e) {
    if (observer_) {
      observer_->on_diagnostic(lint::RuleRegistry::instance().make(
          "EN001", {path.string(), -1, -1},
          std::string("cached result for ") + key.label + " is unusable: " +
              e.what(),
          "the row is recomputed and the blob overwritten"));
    }
  }
  return std::nullopt;
}

void ResultCache::store(const CacheKey& key, const analysis::ExperimentRow& row) {
  // In-process serialization first (threads share lock_fd_, and flock
  // is per open-file-description), then the cross-process flock.
  common::MutexLock lock(store_mutex_);
  lock_directory(key.label);
  try {
    store_locked(key, row);
  } catch (...) {
    unlock_directory();
    throw;
  }
  unlock_directory();
}

void ResultCache::store_locked(const CacheKey& key,
                               const analysis::ExperimentRow& row) {
  const auto dir = std::filesystem::path(dir_);
  const auto final_path = dir / key.file_name();
  // Unique temp name per process *and* thread: thread ids alone can
  // collide across processes sharing a cache dir, which would let two
  // writers interleave into one temp file and publish a corrupt blob.
  // rename() then makes the publish atomic.
#if defined(_WIN32)
  const auto pid = _getpid();
#else
  const auto pid = ::getpid();
#endif
  std::ostringstream tmp_name;
  tmp_name << key.file_name() << ".tmp." << pid << "."
           << std::this_thread::get_id();
  const auto tmp_path = dir / tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary);
    if (!out) throw Error("ResultCache: cannot write " + tmp_path.string());
    write_row_blob(row, key.hash, out);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    throw Error("ResultCache: cannot publish " + final_path.string());
  }
  if (observer_) observer_->on_cache_store(key.label);
  if (max_bytes_ > 0) trim(key.file_name());
}

void ResultCache::trim(const std::string& keep) {
  namespace fs = std::filesystem;
  struct Blob {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t bytes = 0;
  };
  std::vector<Blob> blobs;
  std::uint64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const auto& entry = *it;
    if (!entry.is_regular_file(ec) || ec) continue;
    if (entry.path().extension() != ".nlrc") continue;  // Skip temp files.
    Blob blob;
    blob.path = entry.path();
    blob.mtime = entry.last_write_time(ec);
    if (ec) continue;
    blob.bytes = entry.file_size(ec);
    if (ec) continue;
    total += blob.bytes;
    blobs.push_back(std::move(blob));
  }
  if (total <= max_bytes_) return;

  // Oldest first; ties broken by file name so concurrent trimmers make
  // the same choice.
  std::sort(blobs.begin(), blobs.end(), [](const Blob& a, const Blob& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.filename() < b.path.filename();
  });

  std::uint64_t removed_bytes = 0;
  std::uint64_t removed_count = 0;
  for (const Blob& blob : blobs) {
    if (total <= max_bytes_) break;
    if (blob.path.filename() == keep) continue;  // Never the new blob.
    std::error_code rm_ec;
    if (!fs::remove(blob.path, rm_ec) || rm_ec) continue;  // Lost a race.
    total -= blob.bytes;
    removed_bytes += blob.bytes;
    ++removed_count;
    ++evictions_;
    if (observer_) {
      observer_->on_cache_evict(blob.path.filename().string(), blob.bytes);
    }
  }
  if (removed_count > 0 && observer_) {
    observer_->on_diagnostic(lint::RuleRegistry::instance().make(
        "EN003", {dir_, -1, -1},
        "evicted " + std::to_string(removed_count) + " blob(s) / " +
            std::to_string(removed_bytes) + " bytes to honor the " +
            std::to_string(max_bytes_) + "-byte cache cap",
        "raise the cap (--cache-cap) to keep more rows warm"));
  }
}

}  // namespace netloc::engine
