#include "netloc/engine/task_graph.hpp"

#include <chrono>
#include <exception>
#include <memory>

#include "netloc/common/error.hpp"
#include "netloc/common/thread_annotations.hpp"

namespace netloc::engine {

namespace {

/// Shared run state: per-node remaining-dependency counters plus the
/// completion latch. All transitions happen under one mutex — jobs are
/// multi-millisecond units of work, so scheduling contention is noise.
struct RunState {
  common::Mutex mutex;
  common::CondVar done_cv;
  /// Dependencies left per job.
  std::vector<int> remaining NETLOC_GUARDED_BY(mutex);
  /// Dependency failed; skip work.
  std::vector<bool> cancelled NETLOC_GUARDED_BY(mutex);
  /// Jobs finished or cancelled.
  std::size_t completed NETLOC_GUARDED_BY(mutex) = 0;
  /// First failure, rethrown by run().
  std::exception_ptr first_error NETLOC_GUARDED_BY(mutex);
};

}  // namespace

JobId TaskGraph::add(std::string label, std::string phase,
                     std::function<void()> work) {
  if (!work) throw ConfigError("TaskGraph: job '" + label + "' has no work");
  jobs_.push_back(Node{std::move(label), std::move(phase), std::move(work), {}, 0});
  return jobs_.size() - 1;
}

void TaskGraph::add_edge(JobId before, JobId after) {
  if (before >= jobs_.size() || after >= jobs_.size()) {
    throw ConfigError("TaskGraph: edge references unknown job");
  }
  if (before == after) {
    throw ConfigError("TaskGraph: job cannot depend on itself");
  }
  jobs_[before].dependents.push_back(after);
  ++jobs_[after].dependency_count;
}

void TaskGraph::run(ThreadPool& pool, EngineObserver* observer) {
  if (ran_) throw ConfigError("TaskGraph: run() may be called once");
  ran_ = true;
  if (jobs_.empty()) return;

  // Kahn reachability check up front: a cycle would otherwise stall the
  // run with jobs waiting on each other forever. (Works off jobs_ only —
  // no run state exists yet.)
  {
    std::vector<int> remaining;
    remaining.reserve(jobs_.size());
    for (const auto& job : jobs_) remaining.push_back(job.dependency_count);
    std::vector<JobId> ready;
    for (JobId id = 0; id < jobs_.size(); ++id) {
      if (remaining[id] == 0) ready.push_back(id);
    }
    std::size_t seen = 0;
    while (!ready.empty()) {
      const JobId id = ready.back();
      ready.pop_back();
      ++seen;
      for (const JobId dep : jobs_[id].dependents) {
        if (--remaining[dep] == 0) ready.push_back(dep);
      }
    }
    if (seen != jobs_.size()) {
      throw ConfigError("TaskGraph: dependency cycle detected");
    }
  }

  auto state = std::make_shared<RunState>();
  {
    // No worker can touch the state before the first submit below, but
    // the lock keeps the guarded-member discipline uniform (and costs
    // one uncontended acquisition).
    common::MutexLock lock(state->mutex);
    state->remaining.reserve(jobs_.size());
    for (const auto& job : jobs_) {
      state->remaining.push_back(job.dependency_count);
    }
    state->cancelled.assign(jobs_.size(), false);
  }

  // execute() runs one job and releases its dependents; declared as a
  // shared recursive functor so completion handlers can enqueue from
  // worker threads. The recursive capture must be weak — a strong one
  // would form a shared_ptr cycle and leak the functor (and the run
  // state it holds) on every run. Each enqueued closure re-locks a
  // strong reference, so the functor outlives every invocation.
  auto execute = std::make_shared<std::function<void(JobId)>>();
  const std::weak_ptr<std::function<void(JobId)>> weak_execute = execute;
  *execute = [this, state, observer, weak_execute, &pool](JobId id) {
    Node& job = jobs_[id];
    bool cancelled;
    {
      common::MutexLock lock(state->mutex);
      cancelled = state->cancelled[id];
    }
    bool failed = false;
    if (!cancelled) {
      if (observer) observer->on_job_started({job.label, job.phase});
      const auto begin = std::chrono::steady_clock::now();
      try {
        job.work();
      } catch (...) {
        failed = true;
        common::MutexLock lock(state->mutex);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - begin;
      if (observer) observer->on_job_finished({job.label, job.phase}, elapsed.count());
    }

    std::vector<JobId> ready;
    {
      common::MutexLock lock(state->mutex);
      for (const JobId dep : job.dependents) {
        if (cancelled || failed) state->cancelled[dep] = true;
        if (--state->remaining[dep] == 0) ready.push_back(dep);
      }
      if (++state->completed == jobs_.size()) state->done_cv.notify_all();
    }
    for (const JobId dep : ready) {
      // lock() cannot fail: run() holds a strong reference until every
      // job has completed, and `dep` has not completed yet.
      pool.submit([exec = weak_execute.lock(), dep] { (*exec)(dep); });
    }
  };

  for (JobId id = 0; id < jobs_.size(); ++id) {
    if (jobs_[id].dependency_count == 0) {
      pool.submit([execute, id] { (*execute)(id); });
    }
  }

  common::MutexLock lock(state->mutex);
  while (state->completed != jobs_.size()) {
    state->done_cv.wait(state->mutex);
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace netloc::engine
