#include "netloc/engine/observer.hpp"

#include "netloc/common/format.hpp"

namespace netloc::engine {

void StreamObserver::on_job_started(const JobEvent& job) {
  common::MutexLock lock(mutex_);
  out_ << "[engine] start  " << job.phase << ' ' << job.label << '\n';
}

void StreamObserver::on_job_finished(const JobEvent& job, Seconds elapsed) {
  common::MutexLock lock(mutex_);
  out_ << "[engine] done   " << job.phase << ' ' << job.label << " ("
       << fixed(elapsed * 1e3, 1) << " ms)\n";
}

void StreamObserver::on_cache_hit(const std::string& label) {
  common::MutexLock lock(mutex_);
  out_ << "[engine] cached " << label << '\n';
}

void StreamObserver::on_cache_store(const std::string& label) {
  common::MutexLock lock(mutex_);
  out_ << "[engine] stored " << label << '\n';
}

void StreamObserver::on_cache_evict(const std::string& file,
                                    std::uint64_t bytes) {
  common::MutexLock lock(mutex_);
  out_ << "[engine] evict  " << file << " (" << bytes << " bytes)\n";
}

void StreamObserver::on_diagnostic(const lint::Diagnostic& diagnostic) {
  common::MutexLock lock(mutex_);
  out_ << "[engine] " << lint::format(diagnostic) << '\n';
}

void CountingObserver::on_job_started(const JobEvent& /*job*/) {
  jobs_started_.fetch_add(1);
}

void CountingObserver::on_job_finished(const JobEvent& /*job*/,
                                       Seconds /*elapsed*/) {
  jobs_finished_.fetch_add(1);
}

void CountingObserver::on_cache_hit(const std::string& /*label*/) {
  cache_hits_.fetch_add(1);
}

void CountingObserver::on_cache_store(const std::string& /*label*/) {
  cache_stores_.fetch_add(1);
}

void CountingObserver::on_cache_evict(const std::string& /*file*/,
                                      std::uint64_t /*bytes*/) {
  cache_evictions_.fetch_add(1);
}

void CountingObserver::on_diagnostic(const lint::Diagnostic& diagnostic) {
  diagnostics_.fetch_add(1);
  common::MutexLock lock(mutex_);
  diagnostic_log_.push_back(diagnostic);
}

std::vector<lint::Diagnostic> CountingObserver::collected_diagnostics() const {
  common::MutexLock lock(mutex_);
  return diagnostic_log_;
}

}  // namespace netloc::engine
