#include "netloc/trace/trace.hpp"

#include <algorithm>
#include <utility>

#include "netloc/common/error.hpp"

namespace netloc::trace {

Trace::Trace(std::string app_name, int num_ranks, Seconds duration,
             std::vector<P2PEvent> p2p, std::vector<CollectiveEvent> collectives)
    : app_name_(std::move(app_name)),
      num_ranks_(num_ranks),
      duration_(duration),
      p2p_(std::move(p2p)),
      collectives_(std::move(collectives)) {}

TraceBuilder::TraceBuilder(std::string app_name, int num_ranks)
    : app_name_(std::move(app_name)), num_ranks_(num_ranks) {
  if (num_ranks < 1) throw ConfigError("TraceBuilder: num_ranks must be >= 1");
}

void TraceBuilder::check_rank(Rank r, const char* what) const {
  if (r < 0 || r >= num_ranks_) {
    throw ConfigError(std::string("TraceBuilder: ") + what + " rank " +
                      std::to_string(r) + " out of range [0, " +
                      std::to_string(num_ranks_) + ")");
  }
}

TraceBuilder& TraceBuilder::add_p2p(Rank src, Rank dst, Bytes bytes, Seconds time) {
  check_rank(src, "source");
  check_rank(dst, "destination");
  if (src == dst) throw ConfigError("TraceBuilder: p2p self-message");
  if (time < 0.0) throw ConfigError("TraceBuilder: negative event time");
  p2p_.push_back(P2PEvent{src, dst, bytes, time});
  max_time_ = std::max(max_time_, time);
  return *this;
}

TraceBuilder& TraceBuilder::add_collective(CollectiveOp op, Rank root, Bytes bytes,
                                           Seconds time) {
  check_rank(root, "root");
  if (time < 0.0) throw ConfigError("TraceBuilder: negative event time");
  collectives_.push_back(CollectiveEvent{op, root, bytes, time});
  max_time_ = std::max(max_time_, time);
  return *this;
}

TraceBuilder& TraceBuilder::set_duration(Seconds duration) {
  if (duration <= 0.0) throw ConfigError("TraceBuilder: duration must be > 0");
  duration_ = duration;
  return *this;
}

Trace TraceBuilder::build() {
  const Seconds duration = duration_ > 0.0 ? duration_ : max_time_;
  Trace result(std::move(app_name_), num_ranks_, duration, std::move(p2p_),
               std::move(collectives_));
  app_name_.clear();
  p2p_.clear();
  collectives_.clear();
  duration_ = -1.0;
  max_time_ = 0.0;
  return result;
}

}  // namespace netloc::trace
