#include "netloc/trace/sink.hpp"

#include <algorithm>
#include <utility>

#include "netloc/common/error.hpp"

namespace netloc::trace {

// ---- TraceCollector -------------------------------------------------------

void TraceCollector::require_begun(const char* what) const {
  if (!begun_) {
    throw ConfigError(std::string("TraceCollector: ") + what +
                      " before on_begin()");
  }
  if (ended_) {
    throw ConfigError(std::string("TraceCollector: ") + what +
                      " after on_end()");
  }
}

void TraceCollector::on_begin(std::string_view app_name, int num_ranks) {
  if (begun_) {
    throw ConfigError("TraceCollector: on_begin() called twice");
  }
  if (num_ranks < 1) {
    throw ConfigError("TraceCollector: num_ranks must be >= 1");
  }
  begun_ = true;
  app_name_.assign(app_name);
  num_ranks_ = num_ranks;
}

void TraceCollector::on_reserve(std::uint64_t p2p_events,
                                std::uint64_t collective_events) {
  require_begun("on_reserve()");
  p2p_.reserve(p2p_.size() + static_cast<std::size_t>(p2p_events));
  collectives_.reserve(collectives_.size() +
                       static_cast<std::size_t>(collective_events));
}

void TraceCollector::on_p2p(const P2PEvent& event) {
  require_begun("on_p2p()");
  p2p_.push_back(event);
  max_time_ = std::max(max_time_, event.time);
}

void TraceCollector::on_collective(const CollectiveEvent& event) {
  require_begun("on_collective()");
  collectives_.push_back(event);
  max_time_ = std::max(max_time_, event.time);
}

void TraceCollector::on_end(Seconds duration) {
  require_begun("on_end()");
  ended_ = true;
  duration_ = duration < 0.0 ? max_time_ : duration;
}

Trace TraceCollector::take() {
  if (!ended_) {
    throw ConfigError("TraceCollector: take() before on_end()");
  }
  Trace result(std::move(app_name_), num_ranks_, duration_, std::move(p2p_),
               std::move(collectives_));
  app_name_.clear();
  p2p_.clear();
  collectives_.clear();
  begun_ = false;
  ended_ = false;
  num_ranks_ = 0;
  duration_ = 0.0;
  max_time_ = 0.0;
  return result;
}

// ---- SinkTee --------------------------------------------------------------

SinkTee::SinkTee(std::vector<EventSink*> sinks) : sinks_(std::move(sinks)) {
  for (const auto* sink : sinks_) {
    if (sink == nullptr) throw ConfigError("SinkTee: null sink");
  }
}

void SinkTee::on_begin(std::string_view app_name, int num_ranks) {
  for (auto* sink : sinks_) sink->on_begin(app_name, num_ranks);
}

void SinkTee::on_reserve(std::uint64_t p2p_events,
                         std::uint64_t collective_events) {
  for (auto* sink : sinks_) sink->on_reserve(p2p_events, collective_events);
}

void SinkTee::on_p2p(const P2PEvent& event) {
  for (auto* sink : sinks_) sink->on_p2p(event);
}

void SinkTee::on_collective(const CollectiveEvent& event) {
  for (auto* sink : sinks_) sink->on_collective(event);
}

void SinkTee::on_end(Seconds duration) {
  for (auto* sink : sinks_) sink->on_end(duration);
}

// ---- BuilderSink ----------------------------------------------------------

void BuilderSink::on_begin(std::string_view /*app_name*/, int /*num_ranks*/) {}

void BuilderSink::on_p2p(const P2PEvent& event) {
  builder_->add_p2p(event.src, event.dst, event.bytes, event.time);
}

void BuilderSink::on_collective(const CollectiveEvent& event) {
  builder_->add_collective(event.op, event.root, event.bytes, event.time);
}

void BuilderSink::on_end(Seconds /*duration*/) {}

// ---- emit -----------------------------------------------------------------

void emit(const Trace& trace, EventSink& sink) {
  sink.on_begin(trace.app_name(), trace.num_ranks());
  sink.on_reserve(trace.p2p().size(), trace.collectives().size());
  for (const auto& event : trace.p2p()) sink.on_p2p(event);
  for (const auto& event : trace.collectives()) sink.on_collective(event);
  sink.on_end(trace.duration());
}

}  // namespace netloc::trace
