#include "netloc/trace/stats.hpp"

#include <algorithm>

#include "netloc/common/units.hpp"

namespace netloc::trace {

double TraceStats::p2p_percent() const {
  const auto total = total_volume();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(p2p_volume) / static_cast<double>(total);
}

double TraceStats::collective_percent() const {
  const auto total = total_volume();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(collective_volume) / static_cast<double>(total);
}

double TraceStats::throughput_mb_per_s() const {
  if (duration <= 0.0) return 0.0;
  return volume_mb() / duration;
}

double TraceStats::volume_mb() const {
  return static_cast<double>(total_volume()) / kMB;
}

void StatsAccumulator::on_begin(std::string_view /*app_name*/, int num_ranks) {
  stats_ = TraceStats{};
  max_time_ = 0.0;
  stats_.num_ranks = num_ranks;
}

void StatsAccumulator::on_p2p(const P2PEvent& event) {
  stats_.p2p_volume += event.bytes;
  ++stats_.p2p_messages;
  max_time_ = std::max(max_time_, event.time);
}

void StatsAccumulator::on_collective(const CollectiveEvent& event) {
  stats_.collective_volume += event.bytes;
  ++stats_.collective_calls;
  max_time_ = std::max(max_time_, event.time);
}

void StatsAccumulator::on_end(Seconds duration) {
  stats_.duration = duration < 0.0 ? max_time_ : duration;
}

TraceStats compute_stats(const Trace& trace) {
  StatsAccumulator accumulator;
  emit(trace, accumulator);
  return accumulator.stats();
}

}  // namespace netloc::trace
