#include "netloc/trace/stats.hpp"

#include "netloc/common/units.hpp"

namespace netloc::trace {

double TraceStats::p2p_percent() const {
  const auto total = total_volume();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(p2p_volume) / static_cast<double>(total);
}

double TraceStats::collective_percent() const {
  const auto total = total_volume();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(collective_volume) / static_cast<double>(total);
}

double TraceStats::throughput_mb_per_s() const {
  if (duration <= 0.0) return 0.0;
  return volume_mb() / duration;
}

double TraceStats::volume_mb() const {
  return static_cast<double>(total_volume()) / kMB;
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.num_ranks = trace.num_ranks();
  stats.duration = trace.duration();
  for (const auto& e : trace.p2p()) {
    stats.p2p_volume += e.bytes;
    ++stats.p2p_messages;
  }
  for (const auto& e : trace.collectives()) {
    stats.collective_volume += e.bytes;
    ++stats.collective_calls;
  }
  return stats;
}

}  // namespace netloc::trace
