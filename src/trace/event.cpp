#include "netloc/trace/event.hpp"

#include <array>
#include <string>

#include "netloc/common/error.hpp"

namespace netloc::trace {

namespace {

constexpr std::array<std::string_view, kNumCollectiveOps> kOpNames = {
    "barrier", "bcast",   "reduce",  "allreduce",      "gather",
    "allgather", "scatter", "alltoall", "reduce_scatter",
};

}  // namespace

std::string_view to_string(CollectiveOp op) {
  return kOpNames[static_cast<std::size_t>(op)];
}

CollectiveOp collective_op_from_string(std::string_view name) {
  for (std::size_t i = 0; i < kOpNames.size(); ++i) {
    if (kOpNames[i] == name) return static_cast<CollectiveOp>(i);
  }
  throw TraceFormatError("unknown collective op name: " + std::string(name));
}

}  // namespace netloc::trace
