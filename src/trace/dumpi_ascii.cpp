#include "netloc/trace/dumpi_ascii.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <optional>

#include "netloc/common/error.hpp"
#include "netloc/lint/registry.hpp"

namespace netloc::trace {

namespace {

/// One parsed "<name> entered ... / params ... / <name> returned" block.
struct CallRecord {
  std::string name;
  double enter_walltime = 0.0;
  std::map<std::string, long> ints;          // count=128, dest=3, ...
  std::map<std::string, std::string> names;  // datatype -> "MPI_DOUBLE", ...
};

std::optional<double> parse_walltime(const std::string& line,
                                     std::size_t marker_pos) {
  // "... at walltime 11234.0001, cputime ..." — number after "walltime ".
  // A line truncated right after the marker has no number to read;
  // bail out before substr() can walk past the end of the string.
  if (marker_pos == std::string::npos) return std::nullopt;
  const std::size_t start = marker_pos + std::string("walltime ").size();
  if (start >= line.size()) return std::nullopt;
  std::size_t end = line.find(',', start);
  if (end == std::string::npos) end = line.size();
  try {
    return std::stod(line.substr(start, end - start));
  } catch (...) {
    return std::nullopt;
  }
}

/// Report a recoverable importer problem through the options sink (the
/// TR010 lint rule); silent when no sink is installed.
void report_dropped(const DumpiAsciiOptions& options, std::size_t line_no,
                    const std::string& message) {
  if (options.diagnostics == nullptr) return;
  lint::SourceContext context;
  context.source = "dumpi";
  context.line = static_cast<long>(line_no);
  options.diagnostics->push_back(
      lint::RuleRegistry::instance().make("TR010", std::move(context), message));
}

/// Parse a parameter line ("int count=128", "MPI_Datatype datatype=11
/// (MPI_DOUBLE)"). Returns false for lines that are not parameters.
/// Malformed parameter lines (empty key, non-numeric value) are dropped
/// and reported through the options' diagnostics sink when present.
bool parse_param(const std::string& line, CallRecord& record,
                 std::size_t line_no, const DumpiAsciiOptions& options) {
  const std::size_t eq = line.find('=');
  if (eq == std::string::npos) return false;
  // Key = last token before '='.
  std::size_t key_end = eq;
  std::size_t key_start = line.rfind(' ', eq);
  key_start = key_start == std::string::npos ? 0 : key_start + 1;
  const std::string key = line.substr(key_start, key_end - key_start);
  if (key.empty()) {
    report_dropped(options, line_no,
                   "parameter line with empty key dropped: '" + line + "'");
    return false;
  }

  // Numeric value directly after '='.
  try {
    record.ints[key] = std::stol(line.substr(eq + 1));
  } catch (...) {
    // Non-numeric values are dropped; dumpi's own "<IGNORED>" marker is
    // expected and not worth a diagnostic.
    if (line.compare(eq + 1, 9, "<IGNORED>") != 0) {
      report_dropped(options, line_no,
                     "non-numeric value for parameter '" + key +
                         "' dropped: '" + line + "'");
    }
  }
  // Optional symbolic name in parentheses.
  const std::size_t open = line.find('(', eq);
  if (open != std::string::npos) {
    const std::size_t close = line.find(')', open);
    if (close != std::string::npos) {
      record.names[key] = line.substr(open + 1, close - open - 1);
    }
  }
  return true;
}

bool is_world_comm(const CallRecord& record) {
  const auto it = record.names.find("comm");
  if (it == record.names.end()) {
    // No communicator parameter (or unnamed): dumpi names the world
    // communicator explicitly, so treat absence as world.
    return record.ints.find("comm") == record.ints.end() ||
           record.ints.at("comm") == 2;  // dumpi's world id
  }
  return it->second == "MPI_COMM_WORLD";
}

Bytes datatype_size(const CallRecord& record, const std::string& key,
                    const DumpiAsciiOptions& options) {
  const auto it = record.names.find(key);
  if (it == record.names.end()) return options.derived_datatype_size;
  const Bytes size = builtin_datatype_size(it->second);
  return size > 0 ? size : options.derived_datatype_size;
}

long int_param(const CallRecord& record, const std::string& key, long fallback) {
  const auto it = record.ints.find(key);
  return it == record.ints.end() ? fallback : it->second;
}

/// count*datatype with send-prefixed fallbacks ("sendcount"/"sendtype"
/// take precedence over "count"/"datatype" when present).
Bytes payload_bytes(const CallRecord& record, const DumpiAsciiOptions& options) {
  if (record.ints.count("sendcount") > 0) {
    return static_cast<Bytes>(int_param(record, "sendcount", 0)) *
           datatype_size(record, "sendtype", options);
  }
  return static_cast<Bytes>(int_param(record, "count", 0)) *
         datatype_size(record, "datatype", options);
}

}  // namespace

Bytes builtin_datatype_size(const std::string& name) {
  static const std::map<std::string, Bytes> sizes = {
      {"MPI_CHAR", 1},           {"MPI_SIGNED_CHAR", 1},
      {"MPI_UNSIGNED_CHAR", 1},  {"MPI_BYTE", 1},
      {"MPI_PACKED", 1},         {"MPI_SHORT", 2},
      {"MPI_UNSIGNED_SHORT", 2}, {"MPI_INT", 4},
      {"MPI_UNSIGNED", 4},       {"MPI_FLOAT", 4},
      {"MPI_LONG", 8},           {"MPI_UNSIGNED_LONG", 8},
      {"MPI_LONG_LONG", 8},      {"MPI_LONG_LONG_INT", 8},
      {"MPI_UNSIGNED_LONG_LONG", 8},
      {"MPI_DOUBLE", 8},         {"MPI_LONG_DOUBLE", 16},
      {"MPI_COMPLEX", 8},        {"MPI_DOUBLE_COMPLEX", 16},
      {"MPI_INTEGER", 4},        {"MPI_REAL", 4},
      {"MPI_DOUBLE_PRECISION", 8},
      {"MPI_FLOAT_INT", 8},      {"MPI_DOUBLE_INT", 12},
  };
  const auto it = sizes.find(name);
  return it == sizes.end() ? 0 : it->second;
}

std::size_t parse_dumpi_ascii_rank(std::istream& in, Rank rank, int num_ranks,
                                   EventSink& sink,
                                   const DumpiAsciiOptions& options) {
  if (num_ranks < 1) throw TraceFormatError("dumpi: num_ranks must be >= 1");
  if (rank < 0 || rank >= num_ranks) {
    throw TraceFormatError("dumpi: rank out of range");
  }
  const auto n = static_cast<Bytes>(num_ranks);

  std::size_t calls = 0;
  std::optional<double> base_walltime;
  std::string line;
  std::size_t line_no = 0;

  auto fail = [&](const std::string& why) -> TraceFormatError {
    return TraceFormatError("dumpi line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t entered = line.find(" entered at walltime ");
    if (entered == std::string::npos) continue;

    CallRecord record;
    record.name = line.substr(0, entered);
    if (record.name.rfind("MPI_", 0) != 0) continue;  // Not an MPI call line.
    const auto wall = parse_walltime(line, line.find("walltime ", entered));
    if (!wall) throw fail("unparseable walltime");
    record.enter_walltime = *wall;
    if (!base_walltime) base_walltime = record.enter_walltime;

    // Consume parameter lines until the matching "returned" line.
    bool returned = false;
    while (std::getline(in, line)) {
      ++line_no;
      const std::size_t ret = line.find(" returned at walltime ");
      if (ret != std::string::npos) {
        if (line.substr(0, ret) != record.name) {
          throw fail("mismatched call: " + record.name + " vs " +
                     line.substr(0, ret));
        }
        returned = true;
        break;
      }
      const std::size_t nested = line.find(" entered at walltime ");
      if (nested != std::string::npos && line.rfind("MPI_", 0) == 0) {
        throw fail("interleaved call: " + line.substr(0, nested) +
                   " entered before " + record.name + " returned");
      }
      parse_param(line, record, line_no, options);
    }
    if (!returned) throw fail("EOF inside call " + record.name);
    ++calls;

    const Seconds t = record.enter_walltime - *base_walltime;
    if (t < 0.0) throw fail("walltime went backwards");

    if (!is_world_comm(record)) {
      if (options.reject_unknown_communicators) {
        throw fail(record.name + " on a non-world communicator");
      }
      continue;  // Paper methodology: custom communicators excluded.
    }

    const std::string& op = record.name;
    if (op == "MPI_Send" || op == "MPI_Isend" || op == "MPI_Ssend" ||
        op == "MPI_Rsend" || op == "MPI_Bsend") {
      const long dest = int_param(record, "dest", -1);
      if (dest < 0 || dest >= num_ranks) {
        throw fail(op + ": missing or invalid dest");
      }
      if (static_cast<Rank>(dest) != rank) {
        sink.on_p2p(P2PEvent{rank, static_cast<Rank>(dest),
                             payload_bytes(record, options), t});
      }
    } else if (op == "MPI_Bcast" || op == "MPI_Reduce" || op == "MPI_Gather" ||
               op == "MPI_Scatter") {
      const long root = int_param(record, "root", 0);
      if (root < 0 || root >= num_ranks) throw fail(op + ": invalid root");
      if (static_cast<Rank>(root) != rank) continue;  // Count once, at the root.
      const Bytes total = payload_bytes(record, options) * (n - 1);
      const CollectiveOp coll = op == "MPI_Bcast"    ? CollectiveOp::Bcast
                                : op == "MPI_Reduce" ? CollectiveOp::Reduce
                                : op == "MPI_Gather" ? CollectiveOp::Gather
                                                     : CollectiveOp::Scatter;
      sink.on_collective(
          CollectiveEvent{coll, static_cast<Rank>(root), total, t});
    } else if (op == "MPI_Allreduce" || op == "MPI_Allgather" ||
               op == "MPI_Alltoall" || op == "MPI_Reduce_scatter") {
      if (rank != 0) continue;  // Count once, at rank 0.
      const Bytes total = payload_bytes(record, options) * n * (n - 1);
      const CollectiveOp coll = op == "MPI_Allreduce"   ? CollectiveOp::Allreduce
                                : op == "MPI_Allgather" ? CollectiveOp::Allgather
                                : op == "MPI_Alltoall"  ? CollectiveOp::Alltoall
                                                        : CollectiveOp::ReduceScatter;
      sink.on_collective(CollectiveEvent{coll, 0, total, t});
    } else if (op == "MPI_Barrier") {
      if (rank != 0) continue;
      sink.on_collective(CollectiveEvent{CollectiveOp::Barrier, 0, 0, t});
    }
    // All other calls (receives, waits, administrative calls) carry no
    // send-side volume and are intentionally ignored.
  }
  return calls;
}

std::size_t parse_dumpi_ascii_rank(std::istream& in, Rank rank, int num_ranks,
                                   TraceBuilder& builder,
                                   const DumpiAsciiOptions& options) {
  BuilderSink sink(builder);
  return parse_dumpi_ascii_rank(in, rank, num_ranks, sink, options);
}

void scan_dumpi_ascii(const std::string& app_name,
                      const std::vector<std::string>& rank_paths,
                      EventSink& sink, const DumpiAsciiOptions& options) {
  if (rank_paths.empty()) throw TraceFormatError("dumpi: no rank files");
  const int num_ranks = static_cast<int>(rank_paths.size());
  sink.on_begin(app_name, num_ranks);
  for (int rank = 0; rank < num_ranks; ++rank) {
    std::ifstream in(rank_paths[static_cast<std::size_t>(rank)]);
    if (!in) {
      throw Error("dumpi: cannot open " + rank_paths[static_cast<std::size_t>(rank)]);
    }
    parse_dumpi_ascii_rank(in, rank, num_ranks, sink, options);
  }
  // Duration: derived from the latest event, the TraceBuilder
  // convention the materialized importer always had.
  sink.on_end(-1.0);
}

Trace read_dumpi_ascii(const std::string& app_name,
                       const std::vector<std::string>& rank_paths,
                       const DumpiAsciiOptions& options) {
  TraceCollector collector;
  scan_dumpi_ascii(app_name, rank_paths, collector, options);
  return collector.take();
}

}  // namespace netloc::trace
