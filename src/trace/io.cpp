#include "netloc/trace/io.hpp"

#include <cstring>
#include <fstream>
#include <iostream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "netloc/common/binary_io.hpp"
#include "netloc/common/error.hpp"
#include "netloc/lint/trace_rules.hpp"

namespace netloc::trace {

namespace {

constexpr char kMagic[4] = {'N', 'L', 'T', 'R'};

// Encoding primitives shared with the engine result cache
// (common/binary_io.hpp); truncation throws TraceFormatError here.
using Writer = BinaryWriter;
using Reader = BinaryReader<TraceFormatError>;

void check_rank(Rank r, int num_ranks, const char* what) {
  if (r < 0 || r >= num_ranks) {
    throw TraceFormatError(std::string("trace ") + what + " rank " +
                           std::to_string(r) + " out of range [0, " +
                           std::to_string(num_ranks) + ")");
  }
}

// Fixed on-disk record widths, used to bound the header's event counts
// against the stream size before any allocation happens.
constexpr std::uint64_t kP2PRecordBytes = 4 + 4 + 8 + 8;   // src dst bytes time
constexpr std::uint64_t kCollRecordBytes = 1 + 4 + 8 + 8;  // op root bytes time

/// Bytes left in the stream from the current position, or -1 when the
/// stream is not seekable (then counts cannot be pre-validated and the
/// reserve hint is withheld — memory stays bounded by the actual data).
std::int64_t remaining_bytes(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.clear();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return -1;
  return static_cast<std::int64_t>(end - pos);
}

/// Validate an event count read straight from the file: `count` records
/// of `record_bytes` each must fit in what the stream still holds. A
/// corrupt 8-byte header then throws TraceFormatError instead of
/// driving a multi-gigabyte reserve into std::bad_alloc.
bool count_fits_stream(std::istream& in, std::uint64_t count,
                       std::uint64_t record_bytes, const char* what) {
  const std::int64_t remaining = remaining_bytes(in);
  if (remaining < 0) return false;  // Not seekable: no bound available.
  if (count > static_cast<std::uint64_t>(remaining) / record_bytes) {
    throw TraceFormatError(
        "trace " + std::string(what) + " " + std::to_string(count) +
        " exceeds the remaining stream size (" + std::to_string(remaining) +
        " bytes); corrupt or truncated header");
  }
  return true;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  Writer w(out);
  w.put_bytes(kMagic, sizeof(kMagic));
  w.put<std::uint32_t>(kBinaryFormatVersion);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(trace.app_name().size()));
  w.put_bytes(trace.app_name().data(), trace.app_name().size());
  w.put<std::int32_t>(trace.num_ranks());
  w.put<double>(trace.duration());

  w.put<std::uint64_t>(trace.p2p().size());
  for (const auto& e : trace.p2p()) {
    w.put<std::int32_t>(e.src);
    w.put<std::int32_t>(e.dst);
    w.put<std::uint64_t>(e.bytes);
    w.put<double>(e.time);
  }
  w.put<std::uint64_t>(trace.collectives().size());
  for (const auto& e : trace.collectives()) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(e.op));
    w.put<std::int32_t>(e.root);
    w.put<std::uint64_t>(e.bytes);
    w.put<double>(e.time);
  }

  // Checksum covers everything written above; it is appended raw (not
  // folded into itself).
  w.finish();
  if (!out) throw Error("trace write failed (I/O error)");
}

void scan_binary(std::istream& in, EventSink& sink) {
  Reader r(in, "trace");
  char magic[4];
  r.get_bytes(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw TraceFormatError("bad trace magic (not a dumpi-lite binary trace)");
  }
  const auto version = r.get<std::uint32_t>("version");
  if (version != kBinaryFormatVersion) {
    throw TraceFormatError("unsupported trace format version " +
                           std::to_string(version));
  }
  const auto name_len = r.get<std::uint32_t>("app name length");
  if (name_len > (1u << 20)) {
    throw TraceFormatError("implausible app name length " + std::to_string(name_len));
  }
  std::string name(name_len, '\0');
  if (name_len > 0) r.get_bytes(name.data(), name_len, "app name");
  const auto num_ranks = r.get<std::int32_t>("rank count");
  if (num_ranks < 1) {
    throw TraceFormatError("trace rank count must be >= 1, got " +
                           std::to_string(num_ranks));
  }
  const auto duration = r.get<double>("duration");
  if (!(duration >= 0.0)) {
    throw TraceFormatError("trace duration must be non-negative");
  }
  sink.on_begin(name, num_ranks);

  const auto p2p_count = r.get<std::uint64_t>("p2p event count");
  if (count_fits_stream(in, p2p_count, kP2PRecordBytes, "p2p event count")) {
    sink.on_reserve(p2p_count, 0);
  }
  for (std::uint64_t i = 0; i < p2p_count; ++i) {
    P2PEvent e;
    e.src = r.get<std::int32_t>("p2p src");
    e.dst = r.get<std::int32_t>("p2p dst");
    e.bytes = r.get<std::uint64_t>("p2p bytes");
    e.time = r.get<double>("p2p time");
    check_rank(e.src, num_ranks, "p2p source");
    check_rank(e.dst, num_ranks, "p2p destination");
    sink.on_p2p(e);
  }

  const auto coll_count = r.get<std::uint64_t>("collective event count");
  if (count_fits_stream(in, coll_count, kCollRecordBytes,
                        "collective event count")) {
    sink.on_reserve(0, coll_count);
  }
  for (std::uint64_t i = 0; i < coll_count; ++i) {
    CollectiveEvent e;
    const auto op = r.get<std::uint8_t>("collective op");
    if (op >= kNumCollectiveOps) {
      throw TraceFormatError("invalid collective op id " + std::to_string(op));
    }
    e.op = static_cast<CollectiveOp>(op);
    e.root = r.get<std::int32_t>("collective root");
    e.bytes = r.get<std::uint64_t>("collective bytes");
    e.time = r.get<double>("collective time");
    check_rank(e.root, num_ranks, "collective root");
    sink.on_collective(e);
  }

  r.verify_checksum();
  sink.on_end(duration);
}

Trace read_binary(std::istream& in) {
  TraceCollector collector;
  scan_binary(in, collector);
  return collector.take();
}

void write_text(const Trace& trace, std::ostream& out) {
  out << "# dumpi-lite text trace v" << kBinaryFormatVersion << '\n';
  out << "trace \"" << trace.app_name() << "\" ranks " << trace.num_ranks()
      << " duration " << trace.duration() << '\n';
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& e : trace.p2p()) {
    out << "p2p " << e.src << ' ' << e.dst << ' ' << e.bytes << ' ' << e.time
        << '\n';
  }
  for (const auto& e : trace.collectives()) {
    out << "coll " << to_string(e.op) << ' ' << e.root << ' ' << e.bytes << ' '
        << e.time << '\n';
  }
  if (!out) throw Error("trace write failed (I/O error)");
}

void scan_text(std::istream& in, EventSink& sink) {
  std::string line;
  bool have_header = false;
  int num_ranks = 0;
  double duration = 0.0;

  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    auto fail = [&](const std::string& why) -> TraceFormatError {
      return TraceFormatError("text trace line " + std::to_string(line_no) +
                              ": " + why);
    };
    if (kind == "trace") {
      // trace "<name>" ranks <n> duration <t>
      std::string rest;
      std::getline(ls, rest);
      const auto q1 = rest.find('"');
      const auto q2 = rest.rfind('"');
      if (q1 == std::string::npos || q2 == q1) throw fail("missing quoted app name");
      const std::string name = rest.substr(q1 + 1, q2 - q1 - 1);
      std::istringstream tail(rest.substr(q2 + 1));
      std::string kw1, kw2;
      if (!(tail >> kw1 >> num_ranks >> kw2 >> duration) || kw1 != "ranks" ||
          kw2 != "duration" || num_ranks < 1 || duration < 0.0) {
        throw fail("malformed trace header");
      }
      if (have_header) throw fail("duplicate trace header");
      have_header = true;
      sink.on_begin(name, num_ranks);
    } else if (kind == "p2p") {
      if (!have_header) throw fail("p2p record before trace header");
      P2PEvent e;
      if (!(ls >> e.src >> e.dst >> e.bytes >> e.time)) {
        throw fail("malformed p2p record");
      }
      check_rank(e.src, num_ranks, "p2p source");
      check_rank(e.dst, num_ranks, "p2p destination");
      sink.on_p2p(e);
    } else if (kind == "coll") {
      if (!have_header) throw fail("coll record before trace header");
      std::string op_name;
      CollectiveEvent e;
      if (!(ls >> op_name >> e.root >> e.bytes >> e.time)) {
        throw fail("malformed coll record");
      }
      e.op = collective_op_from_string(op_name);
      check_rank(e.root, num_ranks, "collective root");
      sink.on_collective(e);
    } else {
      throw fail("unknown record kind '" + kind + "'");
    }
  }
  if (!have_header) throw TraceFormatError("text trace has no header line");
  sink.on_end(duration);
}

Trace read_text(std::istream& in) {
  TraceCollector collector;
  scan_text(in, collector);
  return collector.take();
}

void scan(const std::string& path, EventSink& sink) {
  const bool binary = path.size() >= 5 && path.ends_with(".nltr");
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) throw Error("cannot open trace file for reading: " + path);
  if (binary) {
    scan_binary(in, sink);
  } else {
    scan_text(in, sink);
  }
}

void save(const Trace& trace, const std::string& path) {
  const bool binary = path.size() >= 5 && path.ends_with(".nltr");
  std::ofstream out(path, binary ? std::ios::binary : std::ios::out);
  if (!out) throw Error("cannot open trace file for writing: " + path);
  if (binary) {
    write_binary(trace, out);
  } else {
    write_text(trace, out);
  }
}

Trace load(const std::string& path, const LoadOptions& options) {
  const bool binary = path.size() >= 5 && path.ends_with(".nltr");
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) throw Error("cannot open trace file for reading: " + path);
  Trace trace = binary ? read_binary(in) : read_text(in);
  if (options.lint) {
    // Warnings-only lint pass: every analysis entry point that loads a
    // trace inherits the checks, but a finding never aborts the load.
    const auto report = lint::lint_trace(trace, path);
    for (const auto& d : report.diagnostics()) {
      if (options.on_diagnostic) {
        options.on_diagnostic(d);
      } else if (d.severity != lint::Severity::Note) {
        std::cerr << lint::format(d) << '\n';
      }
    }
  }
  return trace;
}

}  // namespace netloc::trace
