#include "netloc/topology/fat_tree.hpp"

#include <string>

#include "netloc/common/error.hpp"

namespace netloc::topology {

FatTree::FatTree(int radix, int stages)
    : radix_(radix), stages_(stages), half_(radix / 2) {
  if (radix < 2 || radix % 2 != 0) {
    throw ConfigError("FatTree: radix must be even and >= 2");
  }
  if (stages < 1) throw ConfigError("FatTree: stages must be >= 1");
  if (stages == 1) {
    nodes_ = radix;
  } else {
    long n = 1;
    for (int s = 0; s < stages; ++s) {
      n *= half_;
      if (n > 1'000'000'000L) throw ConfigError("FatTree: configuration too large");
    }
    nodes_ = static_cast<int>(n);
  }
}

std::string FatTree::config_string() const {
  std::string s = "(";
  s += std::to_string(radix_);
  s += ',';
  s += std::to_string(stages_);
  s += ')';
  return s;
}

void FatTree::route(NodeId a, NodeId b, const LinkVisitor& visit) const {
  visit_route(a, b, visit);
}

}  // namespace netloc::topology
