#include "netloc/topology/fat_tree.hpp"

#include <string>
#include <vector>

#include "netloc/common/error.hpp"

namespace netloc::topology {

FatTree::FatTree(int radix, int stages)
    : radix_(radix), stages_(stages), half_(radix / 2) {
  if (radix < 2 || radix % 2 != 0) {
    throw ConfigError("FatTree: radix must be even and >= 2");
  }
  if (stages < 1) throw ConfigError("FatTree: stages must be >= 1");
  if (stages == 1) {
    nodes_ = radix;
  } else {
    long n = 1;
    for (int s = 0; s < stages; ++s) {
      n *= half_;
      if (n > 1'000'000'000L) throw ConfigError("FatTree: configuration too large");
    }
    nodes_ = static_cast<int>(n);
  }
}

std::string FatTree::config_string() const {
  std::string s = "(";
  s += std::to_string(radix_);
  s += ',';
  s += std::to_string(stages_);
  s += ')';
  return s;
}

void FatTree::route(NodeId a, NodeId b, const LinkVisitor& visit) const {
  visit_route(a, b, visit);
}

std::optional<NetworkGraph> FatTree::build_graph() const {
  // One switch vertex per stage-l block, l in [1, stages]; vertex ids
  // count up level by level after the endpoints.
  std::vector<int> base(static_cast<std::size_t>(stages_) + 1, 0);
  std::vector<int> blocks(static_cast<std::size_t>(stages_) + 1, 0);
  int next_vertex = nodes_;
  for (int l = 1; l <= stages_; ++l) {
    base[static_cast<std::size_t>(l)] = next_vertex;
    blocks[static_cast<std::size_t>(l)] =
        static_cast<int>(nodes_ / block_size(l));
    next_vertex += blocks[static_cast<std::size_t>(l)];
  }
  GraphBuilder builder(nodes_, next_vertex - nodes_, num_links());

  // Level 0: each node's injection link (id = node) into its stage-1
  // block switch.
  for (NodeId n = 0; n < nodes_; ++n) {
    builder.add_link(n, n,
                     base[1] + static_cast<int>(n / block_size(1)),
                     LinkType::kInjection);
  }
  // Levels 1..stages-1: the constant-bisection bundle of block_size(l)
  // parallel links from each stage-l block to its stage-(l+1) parent,
  // matching the destination-congruence slot layout of visit_route.
  for (int l = 1; l < stages_; ++l) {
    const long bs = block_size(l);
    for (int blk = 0; blk < blocks[static_cast<std::size_t>(l)]; ++blk) {
      const int parent = base[static_cast<std::size_t>(l) + 1] + blk / half_;
      for (long slot = 0; slot < bs; ++slot) {
        const auto id = static_cast<LinkId>(static_cast<long>(l) * nodes_ +
                                            blk * bs + slot);
        builder.add_link(id, base[static_cast<std::size_t>(l)] + blk, parent,
                         LinkType::kUpDown);
      }
    }
  }
  return builder.finish();
}

}  // namespace netloc::topology
