#include "netloc/topology/fat_tree.hpp"

#include <string>

#include "netloc/common/error.hpp"

namespace netloc::topology {

FatTree::FatTree(int radix, int stages)
    : radix_(radix), stages_(stages), half_(radix / 2) {
  if (radix < 2 || radix % 2 != 0) {
    throw ConfigError("FatTree: radix must be even and >= 2");
  }
  if (stages < 1) throw ConfigError("FatTree: stages must be >= 1");
  if (stages == 1) {
    nodes_ = radix;
  } else {
    long n = 1;
    for (int s = 0; s < stages; ++s) {
      n *= half_;
      if (n > 1'000'000'000L) throw ConfigError("FatTree: configuration too large");
    }
    nodes_ = static_cast<int>(n);
  }
}

std::string FatTree::config_string() const {
  std::string s = "(";
  s += std::to_string(radix_);
  s += ',';
  s += std::to_string(stages_);
  s += ')';
  return s;
}

long FatTree::block_size(int level) const {
  if (stages_ == 1) return level >= 1 ? nodes_ : 1;
  long size = 1;
  for (int l = 0; l < level; ++l) size *= half_;
  return size;
}

int FatTree::common_stage(NodeId a, NodeId b) const {
  if (a == b) return 0;
  if (stages_ == 1) return 1;
  for (int l = 1; l <= stages_; ++l) {
    if (a / block_size(l) == b / block_size(l)) return l;
  }
  return stages_;  // Unreachable: the top block spans all nodes.
}

int FatTree::hop_distance(NodeId a, NodeId b) const {
  return 2 * common_stage(a, b);
}

void FatTree::route(NodeId a, NodeId b, const LinkVisitor& visit) const {
  if (a == b) return;
  const int top = common_stage(a, b);
  // Link id layout: level 0 = node links (id = node). Level l >= 1 =
  // up/down links between stage-l and stage-(l+1) switches; the link a
  // packet to destination d uses out of / into block B at level l is
  // slot (d mod block_size(l)) within that block's bundle of
  // block_size(l) parallel links (destination-congruence spreading).
  auto level_link = [&](int level, NodeId within, NodeId selector) -> LinkId {
    const long bs = block_size(level);
    const long block = within / bs;
    const long slot = selector % bs;
    return static_cast<LinkId>(static_cast<long>(level) * nodes_ + block * bs + slot);
  };

  visit(a);  // Node a's injection link (level 0).
  for (int l = 1; l < top; ++l) visit(level_link(l, a, b));   // Up phase.
  for (int l = top - 1; l >= 1; --l) visit(level_link(l, b, b));  // Down phase.
  visit(b);  // Node b's ejection link (level 0).
}

}  // namespace netloc::topology
