#include "netloc/topology/route_plan.hpp"

#include <algorithm>
#include <limits>

#include "netloc/common/error.hpp"

namespace netloc::topology {

namespace {

/// Fill the row-major window² distance table from a statically-typed
/// distance functor (no virtual call in the inner loop).
template <typename Distance>
void fill_distances(int window, std::vector<std::uint16_t>& out,
                    Distance&& distance) {
  out.resize(static_cast<std::size_t>(window) *
             static_cast<std::size_t>(window));
  std::size_t idx = 0;
  for (NodeId a = 0; a < window; ++a) {
    for (NodeId b = 0; b < window; ++b) {
      out[idx++] = static_cast<std::uint16_t>(distance(a, b));
    }
  }
}

}  // namespace

std::shared_ptr<const RoutePlan> RoutePlan::build(const Topology& topo,
                                                  int window) {
  auto plan = std::shared_ptr<RoutePlan>(new RoutePlan());
  plan->num_nodes_ = topo.num_nodes();
  plan->num_links_ = topo.num_links();
  plan->config_key_ = topo.name() + " " + topo.config_string();

  if (window < 0) {
    window = std::min(plan->num_nodes_, kDefaultWindowCap);
  }
  plan->window_ = std::min(window, plan->num_nodes_);

  // uint16 must hold every table entry; the diameter bounds them all.
  if (topo.diameter() > std::numeric_limits<std::uint16_t>::max()) {
    throw ConfigError("RoutePlan: topology diameter exceeds distance table range");
  }

  if (const auto* t = dynamic_cast<const Torus3D*>(&topo)) {
    plan->kind_ = Kind::Torus;
    plan->torus_.emplace(*t);
    fill_distances(plan->window_, plan->distances_,
                   [t2 = &*plan->torus_](NodeId a, NodeId b) {
                     return t2->hop_distance(a, b);
                   });
  } else if (const auto* f = dynamic_cast<const FatTree*>(&topo)) {
    plan->kind_ = Kind::FatTree;
    plan->fat_tree_.emplace(*f);
    fill_distances(plan->window_, plan->distances_,
                   [f2 = &*plan->fat_tree_](NodeId a, NodeId b) {
                     return f2->hop_distance(a, b);
                   });
  } else if (const auto* d = dynamic_cast<const Dragonfly*>(&topo)) {
    plan->kind_ = Kind::Dragonfly;
    plan->dragonfly_.emplace(*d);
    fill_distances(plan->window_, plan->distances_,
                   [d2 = &*plan->dragonfly_](NodeId a, NodeId b) {
                     return d2->hop_distance(a, b);
                   });
  } else {
    plan->kind_ = Kind::Generic;
    plan->generic_ = &topo;
    fill_distances(plan->window_, plan->distances_,
                   [&topo](NodeId a, NodeId b) {
                     return topo.hop_distance(a, b);
                   });
  }
  return plan;
}

int RoutePlan::computed_hop_distance(NodeId a, NodeId b) const {
  switch (kind_) {
    case Kind::Torus:
      return torus_->hop_distance(a, b);
    case Kind::FatTree:
      return fat_tree_->hop_distance(a, b);
    case Kind::Dragonfly:
      return dragonfly_->hop_distance(a, b);
    case Kind::Generic:
      return generic_->hop_distance(a, b);
  }
  return 0;  // Unreachable.
}

void RoutePlan::hop_distances(std::span<const NodePair> pairs,
                              std::span<int> out) const {
  if (pairs.size() != out.size()) {
    throw ConfigError("RoutePlan::hop_distances: span sizes differ");
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    out[i] = hop_distance(pairs[i].a, pairs[i].b);
  }
}

int RoutePlan::append_route(NodeId a, NodeId b,
                            std::vector<LinkId>& out) const {
  const int hops = hop_distance(a, b);
  out.reserve(out.size() + static_cast<std::size_t>(hops));
  for_each_route_link(a, b, [&out](LinkId link) { out.push_back(link); });
  return hops;
}

}  // namespace netloc::topology
