#include "netloc/topology/route_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "netloc/common/error.hpp"

namespace netloc::topology {

namespace {

/// Fill the row-major window² distance table from a statically-typed
/// distance functor (no virtual call in the inner loop).
template <typename Distance>
void fill_distances(int window, std::vector<std::uint16_t>& out,
                    Distance&& distance) {
  out.resize(static_cast<std::size_t>(window) *
             static_cast<std::size_t>(window));
  std::size_t idx = 0;
  for (NodeId a = 0; a < window; ++a) {
    for (NodeId b = 0; b < window; ++b) {
      out[idx++] = static_cast<std::uint16_t>(distance(a, b));
    }
  }
}

}  // namespace

std::shared_ptr<const RoutePlan> RoutePlan::build(const Topology& topo,
                                                  int window) {
  return build(topo, RoutingSpec{}, window);
}

int RoutePlan::window_for_budget(int num_nodes, std::size_t table_budget_bytes) {
  if (table_budget_bytes == 0) return -1;
  // w² uint16 entries must fit the budget; the floor keeps a useful
  // cache for the densest (lowest-id) nodes even under absurd budgets.
  constexpr int kWindowFloor = 64;
  const auto affordable = static_cast<int>(std::min<double>(
      std::sqrt(static_cast<double>(table_budget_bytes / sizeof(std::uint16_t))),
      static_cast<double>(std::numeric_limits<int>::max())));
  return std::min(num_nodes, std::max(affordable, kWindowFloor));
}

std::shared_ptr<const RoutePlan> RoutePlan::build(const Topology& topo,
                                                  const RoutingSpec& raw_spec,
                                                  int window) {
  auto plan = std::shared_ptr<RoutePlan>(new RoutePlan());
  plan->spec_ = raw_spec.normalized();
  plan->num_nodes_ = topo.num_nodes();
  plan->num_links_ = topo.num_links();
  plan->config_key_ = topo.name() + " " + topo.config_string();
  if (!plan->spec_.is_default()) {
    plan->config_key_ += " @" + plan->spec_.label();
  }

  if (window < 0) {
    window = std::min(plan->num_nodes_, kDefaultWindowCap);
  }
  plan->window_ = std::min(window, plan->num_nodes_);

  // uint16 must hold every table entry (0xFFFF is the unreachable
  // sentinel); the diameter bounds the fault-free entries.
  if (topo.diameter() >= kUnreachable) {
    throw ConfigError(
        "RoutePlan: topology diameter exceeds distance table range");
  }

  if (const auto* t = dynamic_cast<const Torus3D*>(&topo)) {
    plan->kind_ = Kind::Torus;
    plan->torus_.emplace(*t);
  } else if (const auto* f = dynamic_cast<const FatTree*>(&topo)) {
    plan->kind_ = Kind::FatTree;
    plan->fat_tree_.emplace(*f);
  } else if (const auto* d = dynamic_cast<const Dragonfly*>(&topo)) {
    plan->kind_ = Kind::Dragonfly;
    plan->dragonfly_.emplace(*d);
  } else if (const auto* r = dynamic_cast<const RandomRegular*>(&topo)) {
    plan->kind_ = Kind::RandomRegular;
    plan->rrg_.emplace(*r);
  } else {
    plan->kind_ = Kind::Generic;
    plan->generic_ = &topo;
  }

  if (auto graph = topo.build_graph()) {
    plan->graph_ = std::make_shared<const NetworkGraph>(std::move(*graph));
  }
  if (!plan->spec_.is_default() && !plan->graph_) {
    throw ConfigError("RoutePlan: routing policy '" + plan->spec_.label() +
                      "' requires a topology graph, and " + topo.name() +
                      " does not build one");
  }

  plan->usable_links_ = plan->num_links_;
  if (!plan->spec_.failed_links.empty()) {
    plan->failed_mask_.assign(static_cast<std::size_t>(plan->num_links_), 0);
    for (const LinkId id : plan->spec_.failed_links) {
      if (id < 0 || id >= plan->num_links_) {
        throw ConfigError("RoutePlan: failed link id " + std::to_string(id) +
                          " out of range for " + topo.name() + " " +
                          topo.config_string());
      }
      plan->failed_mask_[static_cast<std::size_t>(id)] = 1;
      // Absent ids (degenerate torus dimensions, mesh wrap slots) carry
      // no traffic, so failing them must not shrink the usable-link
      // denominator.
      if (!plan->graph_ || plan->graph_->link_present(id)) {
        --plan->usable_links_;
      }
    }
    plan->disconnected_ = !plan->graph_->endpoints_connected(
        plan->failed_mask());
  }

  plan->fill_table();
  return plan;
}

void RoutePlan::fill_table() {
  if (spec_.is_default()) {
    switch (kind_) {
      case Kind::Torus:
        fill_distances(window_, distances_,
                       [t = &*torus_](NodeId a, NodeId b) {
                         return t->hop_distance(a, b);
                       });
        break;
      case Kind::FatTree:
        fill_distances(window_, distances_,
                       [f = &*fat_tree_](NodeId a, NodeId b) {
                         return f->hop_distance(a, b);
                       });
        break;
      case Kind::Dragonfly:
        fill_distances(window_, distances_,
                       [d = &*dragonfly_](NodeId a, NodeId b) {
                         return d->hop_distance(a, b);
                       });
        break;
      case Kind::RandomRegular:
        fill_distances(window_, distances_,
                       [r = &*rrg_](NodeId a, NodeId b) {
                         return r->hop_distance(a, b);
                       });
        break;
      case Kind::Generic:
        fill_distances(window_, distances_,
                       [t = generic_](NodeId a, NodeId b) {
                         return t->hop_distance(a, b);
                       });
        break;
    }
    return;
  }

  // Policy path: minimal-with-faults keeps the closed form wherever
  // the route dodges every failed link and falls back to one masked
  // BFS per affected source; ECMP serves every row from BFS.
  distances_.resize(static_cast<std::size_t>(window_) *
                    static_cast<std::size_t>(window_));
  const bool minimal = single_path();
  std::vector<std::int32_t> row;
  std::size_t idx = 0;
  for (NodeId a = 0; a < window_; ++a) {
    bool have_row = false;
    for (NodeId b = 0; b < window_; ++b) {
      int d;
      if (minimal && minimal_route_usable(a, b)) {
        d = minimal_distance(a, b);
      } else {
        if (!have_row) {
          row = graph_->bfs_distances(a, failed_mask());
          have_row = true;
        }
        d = row[static_cast<std::size_t>(b)];
      }
      if (d >= kUnreachable) {
        throw ConfigError("RoutePlan: detour length exceeds distance table");
      }
      distances_[idx++] =
          d < 0 ? kUnreachable : static_cast<std::uint16_t>(d);
    }
  }
}

int RoutePlan::minimal_distance(NodeId a, NodeId b) const {
  switch (kind_) {
    case Kind::Torus:
      return torus_->hop_distance(a, b);
    case Kind::FatTree:
      return fat_tree_->hop_distance(a, b);
    case Kind::Dragonfly:
      return dragonfly_->hop_distance(a, b);
    case Kind::RandomRegular:
      return rrg_->hop_distance(a, b);
    case Kind::Generic:
      return generic_->hop_distance(a, b);
  }
  return 0;  // Unreachable.
}

bool RoutePlan::minimal_route_usable(NodeId a, NodeId b) const {
  if (!faulted()) return true;
  bool usable = true;
  dispatch_route(a, b, [this, &usable](LinkId link) {
    if (failed_mask_[static_cast<std::size_t>(link)] != 0) usable = false;
  });
  return usable;
}

int RoutePlan::spec_distance(NodeId a, NodeId b) const {
  if (single_path() && minimal_route_usable(a, b)) {
    return minimal_distance(a, b);
  }
  return graph_->bfs_distance(a, b, failed_mask());
}

void RoutePlan::reroute(NodeId a, NodeId b,
                        const std::function<void(LinkId)>& sink) const {
  std::vector<LinkId> path;
  if (graph_->shortest_path(a, b, path, failed_mask()) < 0) {
    throw ConfigError("RoutePlan: nodes " + std::to_string(a) + " and " +
                      std::to_string(b) +
                      " are disconnected under the link fault mask");
  }
  for (const LinkId link : path) sink(link);
}

int RoutePlan::computed_hop_distance(NodeId a, NodeId b) const {
  // Only reached when (a, b) missed the table window: count the miss so
  // the engine can surface fallback-dominated runs (EN005).
  out_of_window_hits_.fetch_add(1, std::memory_order_relaxed);
  if (spec_.is_default()) return minimal_distance(a, b);
  return spec_distance(a, b);
}

void RoutePlan::hop_distances(std::span<const NodePair> pairs,
                              std::span<int> out) const {
  if (pairs.size() != out.size()) {
    throw ConfigError("RoutePlan::hop_distances: span sizes differ");
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    out[i] = hop_distance(pairs[i].a, pairs[i].b);
  }
}

int RoutePlan::append_route(NodeId a, NodeId b,
                            std::vector<LinkId>& out) const {
  const int hops = hop_distance(a, b);
  if (hops < 0) {
    throw ConfigError("RoutePlan::append_route: nodes " + std::to_string(a) +
                      " and " + std::to_string(b) +
                      " are disconnected under the link fault mask");
  }
  out.reserve(out.size() + static_cast<std::size_t>(hops));
  for_each_route_link(a, b, [&out](LinkId link) { out.push_back(link); });
  return hops;
}

}  // namespace netloc::topology
