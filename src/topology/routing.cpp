#include "netloc/topology/routing.hpp"

#include <algorithm>
#include <cstdlib>

#include "netloc/common/error.hpp"

namespace netloc::topology {

const char* to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kMinimal: return "minimal";
    case RoutingKind::kEcmp: return "ecmp";
  }
  return "unknown";
}

RoutingKind parse_routing_kind(const std::string& text) {
  if (text == "minimal") return RoutingKind::kMinimal;
  if (text == "ecmp") return RoutingKind::kEcmp;
  throw ConfigError("unknown routing policy '" + text +
                    "' (expected minimal|ecmp)");
}

std::vector<LinkId> parse_link_list(const std::string& text) {
  std::vector<LinkId> links;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    if (token.empty()) {
      throw ConfigError("malformed link list '" + text + "': empty entry");
    }
    char* end = nullptr;
    const long value = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || value < 0) {
      throw ConfigError("malformed link list '" + text + "': bad id '" +
                        token + "'");
    }
    links.push_back(static_cast<LinkId>(value));
    pos = comma + 1;
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

RoutingSpec RoutingSpec::normalized() const {
  RoutingSpec spec = *this;
  std::sort(spec.failed_links.begin(), spec.failed_links.end());
  spec.failed_links.erase(
      std::unique(spec.failed_links.begin(), spec.failed_links.end()),
      spec.failed_links.end());
  return spec;
}

std::string RoutingSpec::label() const {
  std::string text = to_string(kind);
  if (!failed_links.empty()) {
    text += '!';
    for (std::size_t i = 0; i < failed_links.size(); ++i) {
      if (i > 0) text += ',';
      text += std::to_string(failed_links[i]);
    }
  }
  return text;
}

int ecmp_route(const NetworkGraph& graph, int a, int b,
               std::vector<WeightedLink>& out, LinkMask mask) {
  if (a == b) return 0;
  const auto dist_a = graph.bfs_distances(a, mask);
  const int total = dist_a[static_cast<std::size_t>(b)];
  if (total < 0) return -1;
  const auto dist_b = graph.bfs_distances(b, mask);

  // Shortest-path DAG: edge u -> v is on some shortest path iff
  // dist_a[u] + 1 + dist_b[v] == total. Path counts (sigma) are taken
  // in doubles — the 3-stage fat tree's bundle multiplicities overflow
  // 64-bit integers long before they lose double precision that
  // matters for an even split.
  const std::size_t vcount = static_cast<std::size_t>(graph.num_vertices());
  std::vector<double> sigma_a(vcount, 0.0);
  std::vector<double> sigma_b(vcount, 0.0);
  sigma_a[static_cast<std::size_t>(a)] = 1.0;
  sigma_b[static_cast<std::size_t>(b)] = 1.0;

  // Vertices on any shortest path, ordered by dist_a: a layered
  // topological order of the DAG, so one forward and one backward pass
  // settle all counts.
  std::vector<std::int32_t> order;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    const auto da = dist_a[static_cast<std::size_t>(v)];
    const auto db = dist_b[static_cast<std::size_t>(v)];
    if (da >= 0 && db >= 0 && da + db == total) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    const auto dx = dist_a[static_cast<std::size_t>(x)];
    const auto dy = dist_a[static_cast<std::size_t>(y)];
    return dx != dy ? dx < dy : x < y;
  });

  const auto on_dag = [&](int u, int v) {
    return dist_a[static_cast<std::size_t>(u)] + 1 +
               dist_b[static_cast<std::size_t>(v)] ==
           total;
  };
  for (const int v : order) {  // forward: sigma_a
    if (v == a) continue;
    double count = 0.0;
    graph.for_each_incident(v, [&](LinkId link, int other) {
      if (graph.masked(link, mask)) return;
      if (dist_a[static_cast<std::size_t>(other)] + 1 ==
              dist_a[static_cast<std::size_t>(v)] &&
          on_dag(other, v)) {
        count += sigma_a[static_cast<std::size_t>(other)];
      }
    });
    sigma_a[static_cast<std::size_t>(v)] = count;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {  // backward
    const int v = *it;
    if (v == b) continue;
    double count = 0.0;
    graph.for_each_incident(v, [&](LinkId link, int other) {
      if (graph.masked(link, mask)) return;
      if (dist_b[static_cast<std::size_t>(other)] + 1 ==
              dist_b[static_cast<std::size_t>(v)] &&
          on_dag(v, other)) {
        count += sigma_b[static_cast<std::size_t>(other)];
      }
    });
    sigma_b[static_cast<std::size_t>(v)] = count;
  }

  const double paths = sigma_a[static_cast<std::size_t>(b)];
  // paths >= 1 whenever b is reachable; guard against degenerate
  // rounding all the same.
  if (!(paths > 0.0)) return -1;

  // Each DAG edge (u -> v) carries sigma_a(u) * sigma_b(v) of the
  // `paths` shortest paths. Enumerate links from the DAG vertices in
  // order, emitting the a-side direction of each link exactly once.
  const std::size_t start = out.size();
  for (const int u : order) {
    graph.for_each_incident(u, [&](LinkId link, int other) {
      if (graph.masked(link, mask)) return;
      if (dist_a[static_cast<std::size_t>(u)] + 1 !=
          dist_a[static_cast<std::size_t>(other)]) {
        return;  // not the forward direction of this link
      }
      if (!on_dag(u, other)) return;
      const double share = sigma_a[static_cast<std::size_t>(u)] *
                           sigma_b[static_cast<std::size_t>(other)] / paths;
      if (share > 0.0) {
        out.push_back(WeightedLink{link, share});
      }
    });
  }
  // Deterministic output order + merged duplicates (a link cannot be
  // forward twice, but keep the contract tight regardless).
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
            [](const WeightedLink& x, const WeightedLink& y) {
              return x.link < y.link;
            });
  std::size_t tail = start;
  for (std::size_t i = start; i < out.size(); ++i) {
    if (tail > start && out[tail - 1].link == out[i].link) {
      out[tail - 1].share += out[i].share;
    } else {
      out[tail++] = out[i];
    }
  }
  out.resize(tail);
  return total;
}

}  // namespace netloc::topology
