#include "netloc/topology/configs.hpp"

#include <cmath>
#include <map>

#include "netloc/common/error.hpp"

namespace netloc::topology {

namespace {

// Exact Table 2 torus entries.
const std::map<int, std::array<int, 3>> kTorusTable = {
    {8, {2, 2, 2}},      {9, {3, 2, 2}},      {10, {3, 2, 2}},
    {18, {3, 3, 2}},     {27, {3, 3, 3}},     {64, {4, 4, 4}},
    {100, {5, 5, 4}},    {125, {5, 5, 5}},    {144, {6, 6, 4}},
    {168, {7, 6, 4}},    {216, {6, 6, 6}},    {256, {8, 8, 4}},
    {512, {8, 8, 8}},    {1000, {10, 10, 10}}, {1024, {16, 8, 8}},
    {1152, {12, 12, 8}}, {1728, {12, 12, 12}},
};

}  // namespace

std::array<int, 3> torus_dims_for(int ranks) {
  if (ranks < 1) throw ConfigError("torus_dims_for: ranks must be >= 1");
  if (auto it = kTorusTable.find(ranks); it != kTorusTable.end()) {
    return it->second;
  }
  // Fallback: smallest x >= y >= z box with x*y*z >= ranks, preferring
  // minimal capacity, then minimal imbalance (x - z).
  std::array<int, 3> best = {ranks, 1, 1};
  long best_product = static_cast<long>(ranks);
  int best_imbalance = ranks - 1;
  const int limit = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(ranks)))) + 1;
  for (int z = 1; z <= limit; ++z) {
    for (int y = z; static_cast<long>(y) * y * z <= 4L * ranks; ++y) {
      const int x = static_cast<int>((ranks + static_cast<long>(y) * z - 1) /
                                     (static_cast<long>(y) * z));
      if (x < y) continue;
      const long product = static_cast<long>(x) * y * z;
      const int imbalance = x - z;
      if (product < best_product ||
          (product == best_product && imbalance < best_imbalance)) {
        best = {x, y, z};
        best_product = product;
        best_imbalance = imbalance;
      }
    }
  }
  return best;
}

int fat_tree_stages_for(int ranks) {
  if (ranks < 1) throw ConfigError("fat_tree_stages_for: ranks must be >= 1");
  if (ranks <= kFatTreeRadix) return 1;
  const int half = kFatTreeRadix / 2;
  int stages = 2;
  long capacity = static_cast<long>(half) * half;
  while (capacity < ranks) {
    capacity *= half;
    ++stages;
  }
  return stages;
}

std::array<int, 3> dragonfly_params_for(int ranks) {
  if (ranks < 1) throw ConfigError("dragonfly_params_for: ranks must be >= 1");
  // Balanced configuration a = 2h = 2p (Kim et al.): capacity
  // (2p^2 + 1) * 2p^2 nodes; take the smallest sufficient p >= 2.
  for (int p = 2;; ++p) {
    const long groups = 2L * p * p + 1;
    const long capacity = groups * 2L * p * p;
    if (capacity >= ranks) return {2 * p, p, p};
    if (groups > 1'000'000L) throw ConfigError("dragonfly_params_for: ranks too large");
  }
}

TopologySet topologies_for(int ranks) {
  const auto t = torus_dims_for(ranks);
  const auto d = dragonfly_params_for(ranks);
  TopologySet set;
  set.torus = std::make_unique<Torus3D>(t[0], t[1], t[2]);
  set.fat_tree = std::make_unique<FatTree>(kFatTreeRadix, fat_tree_stages_for(ranks));
  set.dragonfly = std::make_unique<Dragonfly>(d[0], d[1], d[2]);
  if (set.torus->num_nodes() < ranks || set.fat_tree->num_nodes() < ranks ||
      set.dragonfly->num_nodes() < ranks) {
    throw ConfigError("topologies_for: configuration smaller than rank count");
  }
  return set;
}

double paper_link_count(const Topology& topo, int ranks) {
  if (ranks < 1) throw ConfigError("paper_link_count: ranks must be >= 1");
  const std::string family = topo.name();
  if (family == "torus3d") {
    // One link per dimension per node, switch integrated into the NIC.
    return 3.0 * ranks;
  }
  if (family == "fattree") {
    // #nodes * #stages, only half the links for the last stage.
    const auto& ft = static_cast<const FatTree&>(topo);
    return ranks * (ft.stages() - 0.5);
  }
  if (family == "dragonfly") {
    // Injection + per-node share of local and global channels. Local
    // and global channels are counted per direction, which reproduces
    // the paper's stated 3.5-3.8 links/node for a = 2h = 2p
    // (1 + (a-1)/p + h/p = 4 - 1/p).
    const auto& df = static_cast<const Dragonfly&>(topo);
    const double a = df.routers_per_group();
    const double h = df.global_links_per_router();
    const double p = df.nodes_per_router();
    return ranks * (1.0 + (a - 1.0) / p + h / p);
  }
  if (family == "rrg") {
    // No Table 2 analogue; count the per-node share of installed links
    // (injection + chord), the same "installed capacity" reading the
    // dragonfly branch uses.
    return static_cast<double>(ranks) *
           (static_cast<double>(topo.num_links()) /
            static_cast<double>(topo.num_nodes()));
  }
  throw ConfigError("paper_link_count: unknown topology family " + family);
}

}  // namespace netloc::topology
