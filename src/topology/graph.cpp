#include "netloc/topology/graph.hpp"

#include <algorithm>

#include "netloc/common/error.hpp"

namespace netloc::topology {

const char* to_string(LinkType type) {
  switch (type) {
    case LinkType::kInjection: return "injection";
    case LinkType::kDirect: return "direct";
    case LinkType::kUpDown: return "up-down";
    case LinkType::kLocal: return "local";
    case LinkType::kGlobal: return "global";
  }
  return "unknown";
}

std::vector<std::int32_t> NetworkGraph::bfs_distances(int from,
                                                      LinkMask mask) const {
  if (from < 0 || from >= num_vertices_) {
    throw ConfigError("NetworkGraph::bfs_distances: vertex out of range");
  }
  std::vector<std::int32_t> dist(static_cast<std::size_t>(num_vertices_), -1);
  std::vector<std::int32_t> queue;
  queue.reserve(static_cast<std::size_t>(num_vertices_));
  dist[static_cast<std::size_t>(from)] = 0;
  queue.push_back(from);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    const int du = dist[static_cast<std::size_t>(u)];
    for_each_incident(u, [&](LinkId link, int other) {
      if (masked(link, mask)) return;
      auto& d = dist[static_cast<std::size_t>(other)];
      if (d < 0) {
        d = du + 1;
        queue.push_back(other);
      }
    });
  }
  return dist;
}

int NetworkGraph::bfs_distance(int from, int to, LinkMask mask) const {
  if (from < 0 || from >= num_vertices_ || to < 0 || to >= num_vertices_) {
    throw ConfigError("NetworkGraph::bfs_distance: vertex out of range");
  }
  if (from == to) return 0;
  std::vector<std::int32_t> dist(static_cast<std::size_t>(num_vertices_), -1);
  std::vector<std::int32_t> queue;
  dist[static_cast<std::size_t>(from)] = 0;
  queue.push_back(from);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    const int du = dist[static_cast<std::size_t>(u)];
    bool found = false;
    for_each_incident(u, [&](LinkId link, int other) {
      if (found || masked(link, mask)) return;
      auto& d = dist[static_cast<std::size_t>(other)];
      if (d < 0) {
        d = du + 1;
        if (other == to) {
          found = true;
          return;
        }
        queue.push_back(other);
      }
    });
    if (found) return du + 1;
  }
  return -1;
}

int NetworkGraph::shortest_path(int from, int to, std::vector<LinkId>& out,
                                LinkMask mask) const {
  if (from < 0 || from >= num_vertices_ || to < 0 || to >= num_vertices_) {
    throw ConfigError("NetworkGraph::shortest_path: vertex out of range");
  }
  if (from == to) return 0;
  std::vector<std::int32_t> dist(static_cast<std::size_t>(num_vertices_), -1);
  std::vector<LinkId> parent_link(static_cast<std::size_t>(num_vertices_),
                                  kInvalidLink);
  std::vector<std::int32_t> parent(static_cast<std::size_t>(num_vertices_),
                                   -1);
  std::vector<std::int32_t> queue;
  dist[static_cast<std::size_t>(from)] = 0;
  queue.push_back(from);
  bool reached = false;
  for (std::size_t head = 0; head < queue.size() && !reached; ++head) {
    const int u = queue[head];
    const int du = dist[static_cast<std::size_t>(u)];
    for_each_incident(u, [&](LinkId link, int other) {
      if (reached || masked(link, mask)) return;
      auto& d = dist[static_cast<std::size_t>(other)];
      if (d < 0) {
        d = du + 1;
        parent[static_cast<std::size_t>(other)] = u;
        parent_link[static_cast<std::size_t>(other)] = link;
        if (other == to) {
          reached = true;
          return;
        }
        queue.push_back(other);
      }
    });
  }
  if (!reached) return -1;
  const int hops = dist[static_cast<std::size_t>(to)];
  const std::size_t start = out.size();
  for (int v = to; v != from; v = parent[static_cast<std::size_t>(v)]) {
    out.push_back(parent_link[static_cast<std::size_t>(v)]);
  }
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
  return hops;
}

bool NetworkGraph::endpoints_connected(LinkMask mask) const {
  if (num_endpoints_ <= 1) return true;
  const auto dist = bfs_distances(0, mask);
  for (int e = 1; e < num_endpoints_; ++e) {
    if (dist[static_cast<std::size_t>(e)] < 0) return false;
  }
  return true;
}

std::string NetworkGraph::summary() const {
  return std::to_string(num_endpoints_) + " endpoints, " +
         std::to_string(num_switches()) + " switches, " +
         std::to_string(num_links()) + " links (" +
         std::to_string(num_present_) + " present)";
}

GraphBuilder::GraphBuilder(int num_endpoints, int num_switches,
                           int num_links) {
  if (num_endpoints < 1 || num_switches < 0 || num_links < 0) {
    throw ConfigError("GraphBuilder: invalid graph shape");
  }
  graph_.num_endpoints_ = num_endpoints;
  graph_.num_vertices_ = num_endpoints + num_switches;
  graph_.links_.resize(static_cast<std::size_t>(num_links));
}

void GraphBuilder::add_link(LinkId id, int u, int v, LinkType type) {
  if (finished_) {
    throw ConfigError("GraphBuilder::add_link: builder already finished");
  }
  if (id < 0 || static_cast<std::size_t>(id) >= graph_.links_.size()) {
    throw ConfigError("GraphBuilder::add_link: link id out of range");
  }
  if (u < 0 || u >= graph_.num_vertices_ || v < 0 ||
      v >= graph_.num_vertices_) {
    throw ConfigError("GraphBuilder::add_link: vertex out of range");
  }
  if (u == v) {
    throw ConfigError("GraphBuilder::add_link: self-loop rejected");
  }
  auto& link = graph_.links_[static_cast<std::size_t>(id)];
  if (link.present) {
    throw ConfigError("GraphBuilder::add_link: duplicate link id " +
                      std::to_string(id));
  }
  link.u = u;
  link.v = v;
  link.type = type;
  link.present = true;
  ++graph_.num_present_;
}

NetworkGraph GraphBuilder::finish() {
  if (finished_) {
    throw ConfigError("GraphBuilder::finish: builder already finished");
  }
  finished_ = true;

  // Counting sort of incident links into CSR form; adjacency order is
  // therefore (vertex, link-id) sorted and deterministic.
  const std::size_t vcount = static_cast<std::size_t>(graph_.num_vertices_);
  std::vector<std::size_t> counts(vcount, 0);
  for (const auto& link : graph_.links_) {
    if (!link.present) continue;
    ++counts[static_cast<std::size_t>(link.u)];
    ++counts[static_cast<std::size_t>(link.v)];
  }
  graph_.offsets_.assign(vcount + 1, 0);
  for (std::size_t v = 0; v < vcount; ++v) {
    graph_.offsets_[v + 1] = graph_.offsets_[v] + counts[v];
  }
  const std::size_t total = graph_.offsets_[vcount];
  graph_.adj_links_.resize(total);
  graph_.adj_other_.resize(total);
  std::vector<std::size_t> cursor(graph_.offsets_.begin(),
                                  graph_.offsets_.end() - 1);
  for (std::size_t id = 0; id < graph_.links_.size(); ++id) {
    const auto& link = graph_.links_[id];
    if (!link.present) continue;
    const auto place = [&](int at, int other) {
      auto& slot = cursor[static_cast<std::size_t>(at)];
      graph_.adj_links_[slot] = static_cast<LinkId>(id);
      graph_.adj_other_[slot] = other;
      ++slot;
    };
    place(link.u, link.v);
    place(link.v, link.u);
  }
  return std::move(graph_);
}

}  // namespace netloc::topology
