#include "netloc/topology/large.hpp"

#include <algorithm>

#include "netloc/common/error.hpp"

namespace netloc::topology {

FatTree sized_fat_tree(int min_endpoints) {
  if (min_endpoints < 1) {
    throw ConfigError("sized_fat_tree: min_endpoints must be >= 1");
  }
  // Smallest half-radix whose cube covers the request; the +1 loop is
  // fine (cbrt of an int bound), no float round-off risk.
  int half = 1;
  while (static_cast<long long>(half) * half * half <
         static_cast<long long>(min_endpoints)) {
    ++half;
  }
  return FatTree(2 * half, 3);
}

Dragonfly full_bisection_dragonfly(int min_endpoints) {
  if (min_endpoints < 1) {
    throw ConfigError("full_bisection_dragonfly: min_endpoints must be >= 1");
  }
  // Balanced a = 2h = 2p at maximal group count g = a*h + 1 = 2p² + 1:
  // capacity = g * a * p = (2p² + 1) * 2p².
  int p = 1;
  while ((2LL * p * p + 1) * 2LL * p * p <
         static_cast<long long>(min_endpoints)) {
    ++p;
  }
  return Dragonfly(2 * p, p, p);
}

RandomRegular sized_random_regular(int min_endpoints, std::uint64_t seed) {
  if (min_endpoints < 4) {
    throw ConfigError("sized_random_regular: min_endpoints must be >= 4");
  }
  const int per_switch =
      (min_endpoints + kMaxSizedRrgSwitches - 1) / kMaxSizedRrgSwitches;
  const int switches = (min_endpoints + per_switch - 1) / per_switch;
  int degree = std::min(32, switches - 1);
  // Pairing model needs switches * degree even.
  if (switches % 2 != 0 && degree % 2 != 0) --degree;
  return RandomRegular(min_endpoints, degree, per_switch, seed);
}

}  // namespace netloc::topology
