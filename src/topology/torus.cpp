#include "netloc/topology/torus.hpp"

#include <string>

#include "netloc/common/error.hpp"

namespace netloc::topology {

Torus3D::Torus3D(int x, int y, int z, bool wraparound)
    : dims_{x, y, z}, nodes_(x * y * z), wraparound_(wraparound) {
  if (x < 1 || y < 1 || z < 1) {
    throw ConfigError("Torus3D: extents must all be >= 1");
  }
}

std::string Torus3D::config_string() const {
  std::string s = "(";
  s += std::to_string(dims_[0]);
  s += ',';
  s += std::to_string(dims_[1]);
  s += ',';
  s += std::to_string(dims_[2]);
  s += ')';
  return s;
}

void Torus3D::route(NodeId a, NodeId b, const LinkVisitor& visit) const {
  visit_route(a, b, visit);
}

int Torus3D::diameter() const {
  int diam = 0;
  for (int d = 0; d < 3; ++d) {
    diam += wraparound_ ? dims_[d] / 2 : dims_[d] - 1;
  }
  return diam;
}

std::optional<NetworkGraph> Torus3D::build_graph() const {
  GraphBuilder builder(nodes_, /*num_switches=*/0, num_links());
  for (NodeId node = 0; node < nodes_; ++node) {
    const auto c = coords(node);
    for (int d = 0; d < 3; ++d) {
      const int extent = dims_[d];
      // Extent-1 dimensions reserve their link ids but connect a node
      // to itself — no physical link. The mesh omits wrap links the
      // same way.
      if (extent == 1) continue;
      if (!wraparound_ && c[d] == extent - 1) continue;
      auto nc = c;
      nc[d] = (c[d] + 1) % extent;
      builder.add_link(plus_link(node, d), node,
                       node_at(nc[0], nc[1], nc[2]), LinkType::kDirect);
    }
  }
  return builder.finish();
}

}  // namespace netloc::topology
