#include "netloc/topology/torus.hpp"

#include <cstdlib>
#include <string>

#include "netloc/common/error.hpp"

namespace netloc::topology {

Torus3D::Torus3D(int x, int y, int z, bool wraparound)
    : dims_{x, y, z}, nodes_(x * y * z), wraparound_(wraparound) {
  if (x < 1 || y < 1 || z < 1) {
    throw ConfigError("Torus3D: extents must all be >= 1");
  }
}

std::string Torus3D::config_string() const {
  std::string s = "(";
  s += std::to_string(dims_[0]);
  s += ',';
  s += std::to_string(dims_[1]);
  s += ',';
  s += std::to_string(dims_[2]);
  s += ')';
  return s;
}

std::array<int, 3> Torus3D::coords(NodeId node) const {
  const int x = node % dims_[0];
  const int y = (node / dims_[0]) % dims_[1];
  const int z = node / (dims_[0] * dims_[1]);
  return {x, y, z};
}

NodeId Torus3D::node_at(int x, int y, int z) const {
  return (z * dims_[1] + y) * dims_[0] + x;
}

int Torus3D::hop_distance(NodeId a, NodeId b) const {
  const auto ca = coords(a);
  const auto cb = coords(b);
  int hops = 0;
  for (int d = 0; d < 3; ++d) {
    const int delta = std::abs(ca[d] - cb[d]);
    hops += wraparound_ ? std::min(delta, dims_[d] - delta) : delta;
  }
  return hops;
}

void Torus3D::route(NodeId a, NodeId b, const LinkVisitor& visit) const {
  // Dimension-order routing: resolve X, then Y, then Z, stepping in the
  // shorter ring direction (ties towards +).
  auto cur = coords(a);
  const auto dst = coords(b);
  for (int d = 0; d < 3; ++d) {
    while (cur[d] != dst[d]) {
      const int extent = dims_[d];
      const int forward = (dst[d] - cur[d] + extent) % extent;
      const int backward = extent - forward;
      // Mesh: never wrap — step straight towards the destination.
      const bool step_forward =
          wraparound_ ? forward <= backward : dst[d] > cur[d];
      if (step_forward) {
        // Move +1: traverse the link owned by the current node.
        visit(plus_link(node_at(cur[0], cur[1], cur[2]), d));
        cur[d] = (cur[d] + 1) % extent;
      } else {
        // Move -1: traverse the link owned by the lower neighbour.
        auto prev = cur;
        prev[d] = (cur[d] - 1 + extent) % extent;
        visit(plus_link(node_at(prev[0], prev[1], prev[2]), d));
        cur[d] = prev[d];
      }
    }
  }
}

int Torus3D::diameter() const {
  int diam = 0;
  for (int d = 0; d < 3; ++d) {
    diam += wraparound_ ? dims_[d] / 2 : dims_[d] - 1;
  }
  return diam;
}

}  // namespace netloc::topology
