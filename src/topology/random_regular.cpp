#include "netloc/topology/random_regular.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "netloc/common/error.hpp"
#include "netloc/common/prng.hpp"

namespace netloc::topology {

namespace {

/// Unordered switch-pair key for the chord dedup set.
std::uint64_t pair_key(SwitchId a, SwitchId b, int num_switches) {
  if (a > b) std::swap(a, b);
  return static_cast<std::uint64_t>(a) *
             static_cast<std::uint64_t>(num_switches) +
         static_cast<std::uint64_t>(b);
}

/// Seeded Fisher-Yates (descending index, xoshiro next_below), fully
/// specified so the wiring is identical across platforms.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.next_below(i)]);
  }
}

}  // namespace

RandomRegular::RandomRegular(int num_endpoints, int degree,
                             int endpoints_per_switch, std::uint64_t seed) {
  if (num_endpoints < 1) {
    throw ConfigError("RandomRegular: num_endpoints must be >= 1");
  }
  if (endpoints_per_switch < 1) {
    throw ConfigError("RandomRegular: endpoints_per_switch must be >= 1");
  }
  if (degree < 3) {
    throw ConfigError("RandomRegular: degree must be >= 3");
  }
  const int s =
      (num_endpoints + endpoints_per_switch - 1) / endpoints_per_switch;
  if (s <= degree) {
    throw ConfigError(
        "RandomRegular: need more switches than the degree (raise "
        "num_endpoints or lower endpoints_per_switch/degree)");
  }
  if (static_cast<long long>(s) * degree % 2 != 0) {
    throw ConfigError(
        "RandomRegular: switches * degree must be even (pairing model)");
  }

  auto data = std::make_shared<Data>();
  data->num_endpoints = num_endpoints;
  data->degree = degree;
  data->per_switch = endpoints_per_switch;
  data->num_switches = s;
  data->seed = seed;

  Xoshiro256 rng(seed ^ 0x5252474f50544cULL);  // Stream-split from the seed.

  // Chord set. A Hamiltonian ring over a random permutation spends two
  // ports per switch and guarantees connectivity; the remaining
  // degree-2 ports per switch pair up as random chords (configuration
  // model) with rejection, and a bounded double-edge-swap repair for
  // stubs the rejection loop cannot place.
  std::vector<std::pair<SwitchId, SwitchId>> chords;
  chords.reserve(static_cast<std::size_t>(s) *
                 static_cast<std::size_t>(degree) / 2);
  std::unordered_set<std::uint64_t> used;
  used.reserve(chords.capacity() * 2);

  std::vector<SwitchId> ring(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) ring[static_cast<std::size_t>(i)] = i;
  shuffle(ring, rng);
  for (int i = 0; i < s; ++i) {
    const SwitchId u = ring[static_cast<std::size_t>(i)];
    const SwitchId v = ring[static_cast<std::size_t>((i + 1) % s)];
    chords.emplace_back(u, v);
    used.insert(pair_key(u, v, s));
  }

  std::vector<SwitchId> stubs;
  stubs.reserve(static_cast<std::size_t>(s) *
                static_cast<std::size_t>(degree - 2));
  for (int sw = 0; sw < s; ++sw) {
    for (int k = 0; k < degree - 2; ++k) stubs.push_back(sw);
  }
  // Pairing passes: shuffle, pair adjacent stubs, carry conflicts
  // (self-loops / duplicate chords) into the next pass.
  for (int pass = 0; pass < 64 && stubs.size() > 2; ++pass) {
    shuffle(stubs, rng);
    std::vector<SwitchId> carry;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const SwitchId u = stubs[i];
      const SwitchId v = stubs[i + 1];
      if (u == v || used.contains(pair_key(u, v, s))) {
        carry.push_back(u);
        carry.push_back(v);
        continue;
      }
      chords.emplace_back(u, v);
      used.insert(pair_key(u, v, s));
    }
    stubs = std::move(carry);
  }
  // Edge-swap repair for the stubborn tail: break an existing chord
  // (x, y) and reconnect as (u, x), (v, y). Preserves all degrees and,
  // because the ring chords are never broken, connectivity.
  const std::size_t ring_chords = static_cast<std::size_t>(s);
  std::size_t attempts = 0;
  while (stubs.size() >= 2) {
    if (++attempts > 100000) {
      throw ConfigError(
          "RandomRegular: chord repair did not converge; try another seed");
    }
    const SwitchId u = stubs[stubs.size() - 2];
    const SwitchId v = stubs[stubs.size() - 1];
    const std::size_t pick =
        ring_chords + rng.next_below(chords.size() - ring_chords);
    const auto [x, y] = chords[pick];
    if (u == x || u == y || v == x || v == y || u == v ||
        used.contains(pair_key(u, x, s)) || used.contains(pair_key(v, y, s))) {
      continue;
    }
    used.erase(pair_key(x, y, s));
    used.insert(pair_key(u, x, s));
    used.insert(pair_key(v, y, s));
    chords[pick] = {u, x};
    chords.emplace_back(v, y);
    stubs.pop_back();
    stubs.pop_back();
  }

  // Dense adjacency, neighbors ascending per switch; chord link ids
  // follow the injection links and are assigned in sorted-pair order
  // so the id space is independent of generation order.
  std::sort(chords.begin(), chords.end(),
            [s](const auto& lhs, const auto& rhs) {
              return pair_key(lhs.first, lhs.second, s) <
                     pair_key(rhs.first, rhs.second, s);
            });
  std::vector<int> fill(static_cast<std::size_t>(s), 0);
  data->adj_switch.assign(
      static_cast<std::size_t>(s) * static_cast<std::size_t>(degree), -1);
  data->adj_link.assign(data->adj_switch.size(), kInvalidLink);
  for (std::size_t c = 0; c < chords.size(); ++c) {
    const auto [u, v] = chords[c];
    const auto link =
        static_cast<LinkId>(static_cast<std::size_t>(num_endpoints) + c);
    for (const auto [from, to] :
         {std::pair<SwitchId, SwitchId>{u, v}, {v, u}}) {
      const auto slot = static_cast<std::size_t>(from) *
                            static_cast<std::size_t>(degree) +
                        static_cast<std::size_t>(fill[static_cast<std::size_t>(
                            from)]++);
      data->adj_switch[slot] = to;
      data->adj_link[slot] = link;
    }
  }
  // Sorted-pair chord order fills each switch's neighbors ascending
  // already for the `u` side but not the `v` side; sort each row's
  // (neighbor, link) slots to make adjacency order canonical.
  for (int sw = 0; sw < s; ++sw) {
    const auto begin =
        static_cast<std::size_t>(sw) * static_cast<std::size_t>(degree);
    std::vector<std::pair<SwitchId, LinkId>> row(
        static_cast<std::size_t>(degree));
    for (int k = 0; k < degree; ++k) {
      row[static_cast<std::size_t>(k)] = {
          data->adj_switch[begin + static_cast<std::size_t>(k)],
          data->adj_link[begin + static_cast<std::size_t>(k)]};
    }
    std::sort(row.begin(), row.end());
    for (int k = 0; k < degree; ++k) {
      data->adj_switch[begin + static_cast<std::size_t>(k)] =
          row[static_cast<std::size_t>(k)].first;
      data->adj_link[begin + static_cast<std::size_t>(k)] =
          row[static_cast<std::size_t>(k)].second;
    }
  }

  // All-pairs switch distances: one BFS per switch over the dense
  // adjacency. O(s * (s + s*d)) total; the table is the price of O(1)
  // endpoint hop queries at any scale (docs/SCALE.md).
  data->dist.assign(
      static_cast<std::size_t>(s) * static_cast<std::size_t>(s), 0);
  std::vector<std::uint16_t> row_dist(static_cast<std::size_t>(s));
  std::vector<SwitchId> queue(static_cast<std::size_t>(s));
  int diameter = 0;
  for (int src = 0; src < s; ++src) {
    std::fill(row_dist.begin(), row_dist.end(), 0xFFFF);
    row_dist[static_cast<std::size_t>(src)] = 0;
    std::size_t head = 0;
    std::size_t tail = 0;
    queue[tail++] = src;
    while (head < tail) {
      const SwitchId cur = queue[head++];
      const auto d = row_dist[static_cast<std::size_t>(cur)];
      const auto begin = static_cast<std::size_t>(cur) *
                         static_cast<std::size_t>(degree);
      for (int k = 0; k < degree; ++k) {
        const SwitchId next = data->adj_switch[begin + static_cast<std::size_t>(k)];
        auto& dn = row_dist[static_cast<std::size_t>(next)];
        if (dn == 0xFFFF) {
          dn = static_cast<std::uint16_t>(d + 1);
          queue[tail++] = next;
        }
      }
    }
    if (tail != static_cast<std::size_t>(s)) {
      // Cannot happen with the ring in place; guard anyway.
      throw ConfigError("RandomRegular: generated switch graph disconnected");
    }
    for (int b = 0; b < s; ++b) {
      diameter = std::max(diameter, static_cast<int>(row_dist[static_cast<std::size_t>(b)]));
    }
    std::copy(row_dist.begin(), row_dist.end(),
              data->dist.begin() + static_cast<std::size_t>(src) *
                                       static_cast<std::size_t>(s));
  }
  data->diameter = diameter;

  data_ = std::move(data);
}

std::string RandomRegular::config_string() const {
  return "(" + std::to_string(data_->num_endpoints) + "," +
         std::to_string(data_->degree) + "," +
         std::to_string(data_->per_switch) + ",s" +
         std::to_string(data_->seed) + ")";
}

void RandomRegular::route(NodeId a, NodeId b, const LinkVisitor& visit) const {
  visit_route(a, b, visit);
}

std::optional<NetworkGraph> RandomRegular::build_graph() const {
  const int n = data_->num_endpoints;
  const int s = data_->num_switches;
  GraphBuilder builder(n, s, num_links());
  for (NodeId node = 0; node < n; ++node) {
    builder.add_link(static_cast<LinkId>(node), node, n + switch_of(node),
                     LinkType::kInjection);
  }
  // Each chord appears twice in the adjacency; add it from the lower
  // switch side only.
  for (int sw = 0; sw < s; ++sw) {
    const auto begin =
        static_cast<std::size_t>(sw) * static_cast<std::size_t>(data_->degree);
    for (int k = 0; k < data_->degree; ++k) {
      const SwitchId other = data_->adj_switch[begin + static_cast<std::size_t>(k)];
      if (sw < other) {
        builder.add_link(data_->adj_link[begin + static_cast<std::size_t>(k)],
                         n + sw, n + other, LinkType::kLocal);
      }
    }
  }
  return builder.finish();
}

}  // namespace netloc::topology
