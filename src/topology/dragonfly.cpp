#include "netloc/topology/dragonfly.hpp"

#include <algorithm>
#include <string>

#include "netloc/common/error.hpp"

namespace netloc::topology {

Dragonfly::Dragonfly(int a, int h, int p) : a_(a), h_(h), p_(p) {
  if (a < 1 || h < 1 || p < 1) {
    throw ConfigError("Dragonfly: a, h, p must all be >= 1");
  }
  if ((a * h) % 2 != 0) {
    throw ConfigError("Dragonfly: a*h must be even for palm-tree pairing");
  }
  num_groups_ = a * h + 1;
  local_per_group_ = a * (a - 1) / 2;
  local_base_ = num_groups_ * a_ * p_;  // After all injection links.
  global_base_ = local_base_ + num_groups_ * local_per_group_;
}

std::string Dragonfly::config_string() const {
  std::string s = "(";
  s += std::to_string(a_);
  s += ',';
  s += std::to_string(h_);
  s += ',';
  s += std::to_string(p_);
  s += ')';
  return s;
}

int Dragonfly::num_links() const {
  const int injection = num_groups_ * a_ * p_;
  const int local = num_groups_ * local_per_group_;
  const int global = num_groups_ * a_ * h_ / 2;
  return injection + local + global;
}

LinkId Dragonfly::local_link(int group, int r1, int r2) const {
  if (r1 > r2) std::swap(r1, r2);
  // Index of the unordered pair (r1 < r2) in the triangular enumeration.
  const int pair = r1 * a_ - r1 * (r1 + 1) / 2 + (r2 - r1 - 1);
  return local_base_ + group * local_per_group_ + pair;
}

int Dragonfly::gateway_router(int src_group, int dst_group) const {
  // Palm tree: offset o = (dst - src) mod g lies in [1, a*h]; global
  // port index o-1 belongs to router (o-1)/h.
  const int offset = (dst_group - src_group + num_groups_) % num_groups_;
  return (offset - 1) / h_;
}

LinkId Dragonfly::global_link(int src_group, int dst_group) const {
  // Canonicalize the physical link: the endpoint with the smaller
  // offset names it. Offsets o and g-o denote the two directions of the
  // same physical link; g odd means o != g-o always.
  const int offset = (dst_group - src_group + num_groups_) % num_groups_;
  const int reverse = num_groups_ - offset;
  const int half = a_ * h_ / 2;
  if (offset <= half) {
    return global_base_ + src_group * half + (offset - 1);
  }
  return global_base_ + dst_group * half + (reverse - 1);
}

int Dragonfly::hop_distance(NodeId a, NodeId b) const {
  if (a == b) return 0;
  const int ga = group_of(a), gb = group_of(b);
  const int ra = router_in_group(a), rb = router_in_group(b);
  if (ga == gb) {
    return ra == rb ? 2 : 3;  // inject [+ local] + eject
  }
  const int gw_src = gateway_router(ga, gb);
  const int gw_dst = gateway_router(gb, ga);
  return 2 + 1 + (ra != gw_src ? 1 : 0) + (rb != gw_dst ? 1 : 0);
}

void Dragonfly::route(NodeId a, NodeId b, const LinkVisitor& visit) const {
  if (a == b) return;
  const int ga = group_of(a), gb = group_of(b);
  const int ra = router_in_group(a), rb = router_in_group(b);
  visit(injection_link(a));
  if (ga == gb) {
    if (ra != rb) visit(local_link(ga, ra, rb));
  } else {
    const int gw_src = gateway_router(ga, gb);
    const int gw_dst = gateway_router(gb, ga);
    if (ra != gw_src) visit(local_link(ga, ra, gw_src));
    visit(global_link(ga, gb));
    if (rb != gw_dst) visit(local_link(gb, gw_dst, rb));
  }
  visit(injection_link(b));
}

int Dragonfly::valiant_hop_distance(NodeId a, NodeId b,
                                    int intermediate_group) const {
  if (intermediate_group < 0 || intermediate_group >= num_groups_) {
    throw ConfigError("Dragonfly: intermediate group out of range");
  }
  if (a == b) return 0;
  const int ga = group_of(a), gb = group_of(b);
  const int gi = intermediate_group;
  if (gi == ga || gi == gb || ga == gb) return hop_distance(a, b);

  const int ra = router_in_group(a), rb = router_in_group(b);
  // Leg 1: a's router -> gateway(ga, gi) -> land in gi.
  const int gw_a = gateway_router(ga, gi);
  const int land_1 = gateway_router(gi, ga);  // Where the link arrives.
  // Leg 2: from land_1 -> gateway(gi, gb) -> land in gb -> b's router.
  const int gw_i = gateway_router(gi, gb);
  const int land_2 = gateway_router(gb, gi);
  return 2                                 // inject + eject
         + (ra != gw_a ? 1 : 0) + 1        // local? + global to gi
         + (land_1 != gw_i ? 1 : 0) + 1    // local? + global to gb
         + (land_2 != rb ? 1 : 0);         // local?
}

double Dragonfly::expected_valiant_hops(NodeId a, NodeId b) const {
  if (a == b) return 0.0;
  long total = 0;
  for (int g = 0; g < num_groups_; ++g) {
    total += valiant_hop_distance(a, b, g);
  }
  return static_cast<double>(total) / num_groups_;
}

int Dragonfly::diameter() const {
  // inject + local + global + local + eject; degenerate cases (a == 1,
  // single group) shrink it.
  if (num_groups_ == 1) return a_ == 1 ? 2 : 3;
  return a_ == 1 ? 3 : 5;
}

}  // namespace netloc::topology
