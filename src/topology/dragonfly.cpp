#include "netloc/topology/dragonfly.hpp"

#include <string>

#include "netloc/common/error.hpp"

namespace netloc::topology {

Dragonfly::Dragonfly(int a, int h, int p) : a_(a), h_(h), p_(p) {
  if (a < 1 || h < 1 || p < 1) {
    throw ConfigError("Dragonfly: a, h, p must all be >= 1");
  }
  if ((a * h) % 2 != 0) {
    throw ConfigError("Dragonfly: a*h must be even for palm-tree pairing");
  }
  num_groups_ = a * h + 1;
  local_per_group_ = a * (a - 1) / 2;
  local_base_ = num_groups_ * a_ * p_;  // After all injection links.
  global_base_ = local_base_ + num_groups_ * local_per_group_;
}

std::string Dragonfly::config_string() const {
  std::string s = "(";
  s += std::to_string(a_);
  s += ',';
  s += std::to_string(h_);
  s += ',';
  s += std::to_string(p_);
  s += ')';
  return s;
}

int Dragonfly::num_links() const {
  const int injection = num_groups_ * a_ * p_;
  const int local = num_groups_ * local_per_group_;
  const int global = num_groups_ * a_ * h_ / 2;
  return injection + local + global;
}

void Dragonfly::route(NodeId a, NodeId b, const LinkVisitor& visit) const {
  visit_route(a, b, visit);
}

int Dragonfly::valiant_hop_distance(NodeId a, NodeId b,
                                    int intermediate_group) const {
  if (intermediate_group < 0 || intermediate_group >= num_groups_) {
    throw ConfigError("Dragonfly: intermediate group out of range");
  }
  if (a == b) return 0;
  const int ga = group_of(a), gb = group_of(b);
  const int gi = intermediate_group;
  if (gi == ga || gi == gb || ga == gb) return hop_distance(a, b);

  const int ra = router_in_group(a), rb = router_in_group(b);
  // Leg 1: a's router -> gateway(ga, gi) -> land in gi.
  const int gw_a = gateway_router(ga, gi);
  const int land_1 = gateway_router(gi, ga);  // Where the link arrives.
  // Leg 2: from land_1 -> gateway(gi, gb) -> land in gb -> b's router.
  const int gw_i = gateway_router(gi, gb);
  const int land_2 = gateway_router(gb, gi);
  return 2                                 // inject + eject
         + (ra != gw_a ? 1 : 0) + 1        // local? + global to gi
         + (land_1 != gw_i ? 1 : 0) + 1    // local? + global to gb
         + (land_2 != rb ? 1 : 0);         // local?
}

double Dragonfly::expected_valiant_hops(NodeId a, NodeId b) const {
  if (a == b) return 0.0;
  long total = 0;
  for (int g = 0; g < num_groups_; ++g) {
    total += valiant_hop_distance(a, b, g);
  }
  return static_cast<double>(total) / num_groups_;
}

int Dragonfly::diameter() const {
  // inject + local + global + local + eject; degenerate cases (a == 1,
  // single group) shrink it.
  if (num_groups_ == 1) return a_ == 1 ? 2 : 3;
  return a_ == 1 ? 3 : 5;
}

std::optional<NetworkGraph> Dragonfly::build_graph() const {
  const int nodes = num_nodes();
  const int routers = num_groups_ * a_;
  const auto router_vertex = [&](int group, int r) {
    return nodes + group * a_ + r;
  };
  GraphBuilder builder(nodes, routers, num_links());

  for (NodeId n = 0; n < nodes; ++n) {
    builder.add_link(injection_link(n), n,
                     router_vertex(group_of(n), router_in_group(n)),
                     LinkType::kInjection);
  }
  for (int g = 0; g < num_groups_; ++g) {
    for (int r1 = 0; r1 < a_; ++r1) {
      for (int r2 = r1 + 1; r2 < a_; ++r2) {
        builder.add_link(local_link(g, r1, r2), router_vertex(g, r1),
                         router_vertex(g, r2), LinkType::kLocal);
      }
    }
  }
  // Each physical global link once, in its canonical (smaller-offset)
  // direction; offsets 1..a*h/2 out of every group cover the id space
  // densely.
  const int half = a_ * h_ / 2;
  for (int g = 0; g < num_groups_; ++g) {
    for (int offset = 1; offset <= half; ++offset) {
      const int dst = (g + offset) % num_groups_;
      builder.add_link(global_link(g, dst),
                       router_vertex(g, gateway_router(g, dst)),
                       router_vertex(dst, gateway_router(dst, g)),
                       LinkType::kGlobal);
    }
  }
  return builder.finish();
}

}  // namespace netloc::topology
