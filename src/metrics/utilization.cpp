#include "netloc/metrics/utilization.hpp"

#include <unordered_map>

#include "netloc/common/error.hpp"
#include "netloc/topology/configs.hpp"

namespace netloc::metrics {

namespace {

/// Accumulate per-link byte loads and global-link packet counts by
/// routing every non-zero matrix entry once.
struct LinkAccounting {
  std::unordered_map<LinkId, Bytes> load;
  Count global_packets = 0;
  Count total_packets = 0;

  LinkAccounting(const TrafficMatrix& matrix, const topology::Topology& topo,
                 const mapping::Mapping& mapping) {
    const int n = matrix.num_ranks();
    for (Rank s = 0; s < n; ++s) {
      const NodeId ns = mapping.node_of(s);
      for (Rank d = 0; d < n; ++d) {
        const Bytes bytes = matrix.bytes(s, d);
        const Count packets = matrix.packets(s, d);
        if (bytes == 0 && packets == 0) continue;
        total_packets += packets;
        const NodeId nd = mapping.node_of(d);
        if (ns == nd) continue;
        bool crosses_global = false;
        topo.route(ns, nd, [&](LinkId link) {
          load[link] += bytes;
          if (topo.link_is_global(link)) crosses_global = true;
        });
        if (crosses_global) global_packets += packets;
      }
    }
  }
};

}  // namespace

UtilizationResult utilization(const TrafficMatrix& matrix,
                              const topology::Topology& topo,
                              const mapping::Mapping& mapping,
                              Seconds execution_time, LinkCountMode mode,
                              double bandwidth_bytes_per_s) {
  if (execution_time <= 0.0) {
    throw ConfigError("utilization: execution_time must be > 0");
  }
  if (bandwidth_bytes_per_s <= 0.0) {
    throw ConfigError("utilization: bandwidth must be > 0");
  }
  UtilizationResult result;
  result.volume = matrix.total_bytes();
  if (mode == LinkCountMode::PaperFormula) {
    result.link_count = topology::paper_link_count(topo, matrix.num_ranks());
  } else {
    const LinkAccounting accounting(matrix, topo, mapping);
    result.link_count = static_cast<double>(accounting.load.size());
  }
  if (result.link_count <= 0.0) {
    result.utilization_percent = 0.0;
    return result;
  }
  result.utilization_percent =
      100.0 * static_cast<double>(result.volume) /
      (bandwidth_bytes_per_s * execution_time * result.link_count);
  return result;
}

LinkLoadStats link_loads(const TrafficMatrix& matrix,
                         const topology::Topology& topo,
                         const mapping::Mapping& mapping) {
  const LinkAccounting accounting(matrix, topo, mapping);
  LinkLoadStats stats;
  stats.used_links = static_cast<int>(accounting.load.size());
  double sum = 0.0;
  for (const auto& [link, bytes] : accounting.load) {
    stats.max_link_bytes = std::max(stats.max_link_bytes, bytes);
    sum += static_cast<double>(bytes);
  }
  stats.mean_link_bytes = stats.used_links > 0 ? sum / stats.used_links : 0.0;
  stats.global_link_packet_share =
      accounting.total_packets > 0
          ? static_cast<double>(accounting.global_packets) /
                static_cast<double>(accounting.total_packets)
          : 0.0;
  return stats;
}

}  // namespace netloc::metrics
