#include "netloc/metrics/utilization.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "netloc/common/error.hpp"
#include "netloc/common/thread_pool.hpp"
#include "netloc/metrics/kernel_partition.hpp"
#include "netloc/topology/configs.hpp"

namespace netloc::metrics {

namespace {

/// Validate a caller-supplied plan against the topology, or build a
/// throwaway tableless plan when none was supplied. The returned
/// shared_ptr keeps an internally-built plan alive; `plan` is left
/// pointing at whichever plan to use.
std::shared_ptr<const topology::RoutePlan> ensure_plan(
    const topology::Topology& topo, const topology::RoutePlan*& plan,
    const char* where) {
  if (plan == nullptr) {
    auto local = topology::RoutePlan::build(topo, 0);
    plan = local.get();
    return local;
  }
  if (plan->num_nodes() != topo.num_nodes()) {
    throw ConfigError(std::string(where) +
                      ": route plan does not match topology");
  }
  return nullptr;
}

/// One worker's accounting state for the single-path kernel: a private
/// load array and touch bitmap over the full link space plus integer
/// totals. Bytes and counts are integers, so folding workers in range
/// order reproduces the serial pass exactly.
struct LoadShard {
  std::vector<Bytes> loads;
  std::vector<unsigned char> touched;
  Count global_packets = 0;
  Count total_packets = 0;
  Count unroutable_packets = 0;
};

/// The single-path accounting loop over one source-row range,
/// accumulating into `shard` — the exact per-cell body of the serial
/// kernel.
void accumulate_rows(const TrafficMatrix& matrix,
                     const topology::RoutePlan& plan,
                     const mapping::Mapping& mapping, Rank begin, Rank end,
                     LoadShard& shard) {
  // Reachability only needs checking when the fault mask actually cut
  // the endpoint set apart; the common (healthy) path skips the test.
  const bool check_reach = plan.disconnected();
  matrix.for_each_nonzero_rows(
      begin, end, [&](Rank s, Rank d, const TrafficCell& cell) {
        shard.total_packets += cell.packets;
        const NodeId ns = mapping.node_of(s);
        const NodeId nd = mapping.node_of(d);
        if (ns == nd) return;
        if (check_reach && plan.hop_distance(ns, nd) < 0) {
          shard.unroutable_packets += cell.packets;
          return;
        }
        bool crosses_global = false;
        plan.for_each_route_link(ns, nd, [&](LinkId link) {
          const auto li = static_cast<std::size_t>(link);
          shard.touched[li] = 1;
          shard.loads[li] += cell.bytes;
          if (plan.link_is_global(link)) crosses_global = true;
        });
        if (crosses_global) shard.global_packets += cell.packets;
      });
}

}  // namespace

LinkAccountingTotals accumulate_link_loads(const TrafficMatrix& matrix,
                                           const topology::RoutePlan& plan,
                                           const mapping::Mapping& mapping,
                                           std::span<Bytes> link_loads,
                                           int threads) {
  const auto num_links = static_cast<std::size_t>(plan.num_links());
  if (link_loads.size() < num_links) {
    throw ConfigError(
        "accumulate_link_loads: link_loads smaller than plan.num_links()");
  }
  if (!plan.single_path()) {
    throw ConfigError(
        "accumulate_link_loads: multipath plan needs the weighted overload");
  }
  threads = resolve_kernel_threads(threads);
  std::vector<RowRange> ranges;
  if (threads > 1 && matrix.frozen()) {
    ranges = partition_rows_by_cells(matrix, threads);
  }
  if (ranges.size() <= 1) {
    ranges.assign(1, {0, matrix.num_ranks()});
  }

  std::vector<LoadShard> shards(ranges.size());
  auto run_range = [&](std::size_t i) {
    shards[i].loads.assign(num_links, 0);
    shards[i].touched.assign(num_links, 0);
    accumulate_rows(matrix, plan, mapping, ranges[i].begin, ranges[i].end,
                    shards[i]);
  };
  if (ranges.size() == 1) {
    run_range(0);
  } else {
    ThreadPool pool(static_cast<int>(ranges.size()));
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      pool.submit([&run_range, i] { run_range(i); });
    }
    pool.wait_idle();
  }

  // Deterministic reduction: per-link sums fold the shards in range
  // (== row) order; everything is integer arithmetic, so the totals
  // are identical to the serial single-shard pass for any thread
  // count. A link is "used" once any shard's route set touches it —
  // including zero-byte (pure-packet) touches, which is why the touch
  // bitmap exists at all.
  LinkAccountingTotals totals;
  for (std::size_t li = 0; li < num_links; ++li) {
    bool used = false;
    Bytes sum = 0;
    for (const LoadShard& shard : shards) {
      sum += shard.loads[li];
      used = used || shard.touched[li] != 0;
    }
    link_loads[li] += sum;
    if (used) ++totals.used_links;
  }
  for (const LoadShard& shard : shards) {
    totals.global_packets += shard.global_packets;
    totals.total_packets += shard.total_packets;
    totals.unroutable_packets += shard.unroutable_packets;
  }
  return totals;
}

LinkAccountingTotals accumulate_link_loads(const TrafficMatrix& matrix,
                                           const topology::RoutePlan& plan,
                                           const mapping::Mapping& mapping,
                                           std::span<double> link_loads) {
  if (link_loads.size() < static_cast<std::size_t>(plan.num_links())) {
    throw ConfigError(
        "accumulate_link_loads: link_loads smaller than plan.num_links()");
  }
  LinkAccountingTotals totals;
  std::vector<unsigned char> touched(
      static_cast<std::size_t>(plan.num_links()), 0);
  matrix.for_each_nonzero([&](Rank s, Rank d, const TrafficCell& cell) {
    totals.total_packets += cell.packets;
    const NodeId ns = mapping.node_of(s);
    const NodeId nd = mapping.node_of(d);
    if (ns == nd) return;
    bool crosses_global = false;
    bool routed = false;
    plan.for_each_weighted_link(ns, nd, [&](LinkId link, double share) {
      routed = true;
      const auto li = static_cast<std::size_t>(link);
      if (!touched[li]) {
        touched[li] = 1;
        ++totals.used_links;
      }
      link_loads[li] += share * static_cast<double>(cell.bytes);
      if (plan.link_is_global(link)) crosses_global = true;
    });
    if (!routed) {  // Distinct nodes with no route: disconnected pair.
      totals.unroutable_packets += cell.packets;
      return;
    }
    if (crosses_global) totals.global_packets += cell.packets;
  });
  return totals;
}

UtilizationResult utilization(const TrafficMatrix& matrix,
                              const topology::Topology& topo,
                              const mapping::Mapping& mapping,
                              Seconds execution_time, LinkCountMode mode,
                              double bandwidth_bytes_per_s,
                              const topology::RoutePlan* plan, int threads) {
  if (execution_time <= 0.0) {
    throw ConfigError("utilization: execution_time must be > 0");
  }
  if (bandwidth_bytes_per_s <= 0.0) {
    throw ConfigError("utilization: bandwidth must be > 0");
  }
  UtilizationResult result;
  result.volume = matrix.total_bytes();
  if (mode == LinkCountMode::PaperFormula) {
    result.link_count = topology::paper_link_count(topo, matrix.num_ranks());
    // Dead links cannot carry traffic: a plan with a fault mask
    // shrinks the denominator by the failed-link count. Without
    // faults usable_links() == num_links() and nothing changes.
    if (plan != nullptr && plan->usable_links() < plan->num_links()) {
      const int dead = plan->num_links() - plan->usable_links();
      result.link_count = std::max(0.0, result.link_count - dead);
    }
  } else {
    const auto local = ensure_plan(topo, plan, "utilization");
    if (plan->single_path()) {
      std::vector<Bytes> loads(static_cast<std::size_t>(plan->num_links()),
                               0);
      const LinkAccountingTotals totals =
          accumulate_link_loads(matrix, *plan, mapping, loads, threads);
      result.link_count = static_cast<double>(totals.used_links);
    } else {
      std::vector<double> loads(static_cast<std::size_t>(plan->num_links()),
                                0.0);
      const LinkAccountingTotals totals =
          accumulate_link_loads(matrix, *plan, mapping, loads);
      result.link_count = static_cast<double>(totals.used_links);
    }
  }
  if (result.link_count <= 0.0) {
    result.utilization_percent = 0.0;
    return result;
  }
  result.utilization_percent =
      100.0 * static_cast<double>(result.volume) /
      (bandwidth_bytes_per_s * execution_time * result.link_count);
  return result;
}

LinkLoadStats link_loads(const TrafficMatrix& matrix,
                         const topology::Topology& topo,
                         const mapping::Mapping& mapping,
                         const topology::RoutePlan* plan, int threads) {
  const auto local = ensure_plan(topo, plan, "link_loads");
  LinkLoadStats stats;
  LinkAccountingTotals totals;
  double sum = 0.0;
  if (plan->single_path()) {
    std::vector<Bytes> loads(static_cast<std::size_t>(plan->num_links()), 0);
    totals = accumulate_link_loads(matrix, *plan, mapping, loads, threads);
    for (const Bytes bytes : loads) {
      stats.max_link_bytes = std::max(stats.max_link_bytes, bytes);
      sum += static_cast<double>(bytes);
    }
  } else {
    // ECMP spreads fractional loads; report the heaviest link rounded
    // to whole bytes.
    std::vector<double> loads(static_cast<std::size_t>(plan->num_links()),
                              0.0);
    totals = accumulate_link_loads(matrix, *plan, mapping, loads);
    double max_load = 0.0;
    for (const double bytes : loads) {
      max_load = std::max(max_load, bytes);
      sum += bytes;
    }
    stats.max_link_bytes = static_cast<Bytes>(std::llround(max_load));
  }
  stats.used_links = totals.used_links;
  stats.mean_link_bytes = stats.used_links > 0 ? sum / stats.used_links : 0.0;
  stats.global_link_packet_share =
      totals.total_packets > 0
          ? static_cast<double>(totals.global_packets) /
                static_cast<double>(totals.total_packets)
          : 0.0;
  return stats;
}

}  // namespace netloc::metrics
