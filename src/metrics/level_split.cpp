#include "netloc/metrics/level_split.hpp"

#include <string>

#include "netloc/common/error.hpp"

namespace netloc::metrics {

double LevelSplit::share_percent(mapping::Level level) const {
  const Bytes total = total_bytes();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(bytes_at(level)) /
         static_cast<double>(total);
}

double LevelSplit::intra_node_percent() const {
  const Bytes total = total_bytes();
  if (total == 0) return 0.0;
  const Bytes intra = total - bytes_at(mapping::Level::Network);
  return 100.0 * static_cast<double>(intra) / static_cast<double>(total);
}

LevelSplit traffic_level_split(const TrafficMatrix& matrix,
                               const mapping::Placement& placement) {
  if (placement.num_ranks() < matrix.num_ranks()) {
    throw ConfigError("traffic_level_split: placement covers " +
                      std::to_string(placement.num_ranks()) +
                      " ranks but the matrix has " +
                      std::to_string(matrix.num_ranks()));
  }
  LevelSplit split;
  matrix.for_each_nonzero([&](Rank src, Rank dst, const TrafficCell& cell) {
    const auto level = static_cast<std::size_t>(placement.level_of(src, dst));
    split.bytes[level] += cell.bytes;
    split.packets[level] += cell.packets;
  });
  return split;
}

}  // namespace netloc::metrics
