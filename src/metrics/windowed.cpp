#include "netloc/metrics/windowed.hpp"

#include <algorithm>
#include <utility>

#include "netloc/common/error.hpp"

namespace netloc::metrics {

namespace {

/// Per-window share of the open-phase budget. An unbudgeted pass stays
/// unbudgeted (0 = classic dense buffers); a budgeted one gives each
/// window budget / W, floored at 1 byte so the matrix still tiles
/// (a 0 share would silently fall back to the dense path).
std::size_t per_window_budget(std::size_t budget, int windows) {
  if (budget == 0) return 0;
  return std::max<std::size_t>(1, budget / static_cast<std::size_t>(windows));
}

}  // namespace

WindowedTrafficAccumulator::WindowedTrafficAccumulator(
    Seconds duration, int windows, const TrafficOptions& options)
    : duration_(duration),
      windows_(windows),
      options_(options),
      profile_(duration, windows, options) {
  // The profile constructor has already rejected windows < 1.
  if (duration > 0.0) window_seconds_ = duration / windows;
}

int WindowedTrafficAccumulator::window_of(Seconds time) const {
  // Exactly TimeProfileAccumulator::add_volume's binning; for
  // zero-duration traces every event collapses into window 0 so the
  // cell-wise conservation law still holds.
  if (window_seconds_ <= 0.0) return 0;
  const auto w = static_cast<int>(time / window_seconds_);
  return std::clamp(w, 0, windows_ - 1);
}

void WindowedTrafficAccumulator::on_begin(std::string_view app_name,
                                          int num_ranks) {
  profile_.on_begin(app_name, num_ranks);
  matrices_.clear();
  matrices_.reserve(static_cast<std::size_t>(windows_));
  const std::size_t budget =
      per_window_budget(options_.memory_budget_bytes, windows_);
  for (int w = 0; w < windows_; ++w) matrices_.emplace_back(num_ranks, budget);
  groups_.assign(static_cast<std::size_t>(windows_), CollectiveGroups{});
  ended_ = false;
}

void WindowedTrafficAccumulator::on_p2p(const trace::P2PEvent& event) {
  if (matrices_.empty()) {
    throw ConfigError("WindowedTrafficAccumulator: on_p2p() before on_begin()");
  }
  profile_.on_p2p(event);
  if (options_.include_p2p) {
    matrices_[static_cast<std::size_t>(window_of(event.time))].add_message(
        event.src, event.dst, event.bytes);
  }
}

void WindowedTrafficAccumulator::on_collective(
    const trace::CollectiveEvent& event) {
  if (matrices_.empty()) {
    throw ConfigError(
        "WindowedTrafficAccumulator: on_collective() before on_begin()");
  }
  profile_.on_collective(event);
  if (options_.include_collectives) {
    // Grouped per window: identical patterns inside one window expand
    // once and scale, exactly as the aggregate accumulator does over
    // the whole trace. Expansion is linear in the repeat count, so the
    // per-window split sums back to the aggregate expansion.
    ++groups_[static_cast<std::size_t>(window_of(event.time))]
             [{event.op, event.root, event.bytes}];
  }
}

void WindowedTrafficAccumulator::on_end(Seconds duration) {
  if (matrices_.empty()) {
    throw ConfigError("WindowedTrafficAccumulator: on_end() before on_begin()");
  }
  for (int w = 0; w < windows_; ++w) {
    auto& matrix = matrices_[static_cast<std::size_t>(w)];
    expand_collective_groups(matrix, options_,
                             groups_[static_cast<std::size_t>(w)]);
    matrix.freeze();
  }
  groups_.clear();
  profile_.on_end(duration);
  ended_ = true;
}

WindowedTraffic WindowedTrafficAccumulator::take() {
  if (!ended_) {
    throw ConfigError("WindowedTrafficAccumulator: take() before on_end()");
  }
  WindowedTraffic result;
  result.duration = duration_;
  result.window_seconds = window_seconds_;
  result.windows = std::move(matrices_);
  result.profile = profile_.profile();
  matrices_.clear();
  ended_ = false;
  return result;
}

WindowedTraffic windowed_traffic(const trace::Trace& trace, int windows,
                                 const TrafficOptions& options) {
  WindowedTrafficAccumulator accumulator(trace.duration(), windows, options);
  trace::emit(trace, accumulator);
  return accumulator.take();
}

}  // namespace netloc::metrics
