#include "netloc/metrics/locality.hpp"

#include <cmath>
#include <cstdlib>

#include "netloc/common/grid.hpp"
#include "netloc/common/quantile.hpp"

namespace netloc::metrics {

namespace {

double distance_quantile(const TrafficMatrix& matrix, int dims, double fraction) {
  const int n = matrix.num_ranks();
  const GridDims grid = dims > 1 ? balanced_dims(n, dims) : GridDims{{n}};
  std::vector<WeightedSample> samples;
  samples.reserve(matrix.nonzero_pairs());
  // Ascending (src, dst) order, matching the dense scan this replaces.
  matrix.for_each_nonzero([&](Rank s, Rank d, const TrafficCell& cell) {
    if (cell.bytes == 0) return;
    const double dist =
        dims > 1
            ? static_cast<double>(chebyshev_distance(s, d, grid))
            : static_cast<double>(std::abs(static_cast<long>(s) - static_cast<long>(d)));
    samples.push_back({dist, static_cast<double>(cell.bytes)});
  });
  return weighted_quantile_interpolated(std::move(samples), fraction);
}

}  // namespace

double rank_distance(const TrafficMatrix& matrix, double fraction) {
  return distance_quantile(matrix, 1, fraction);
}

double rank_locality_percent(const TrafficMatrix& matrix, double fraction) {
  const double dist = rank_distance(matrix, fraction);
  if (dist <= 0.0) return 0.0;
  return std::min(100.0, 100.0 / dist);
}

double dimensional_rank_distance(const TrafficMatrix& matrix, int dims,
                                 double fraction) {
  return distance_quantile(matrix, dims, fraction);
}

double dimensional_rank_locality_percent(const TrafficMatrix& matrix, int dims,
                                         double fraction) {
  const double dist = dimensional_rank_distance(matrix, dims, fraction);
  if (dist <= 0.0) return 0.0;
  return std::min(100.0, 100.0 / dist);
}

}  // namespace netloc::metrics
