#include "netloc/metrics/hops.hpp"

#include "netloc/common/error.hpp"

namespace netloc::metrics {

HopStats hop_stats(const TrafficMatrix& matrix, const topology::Topology& topo,
                   const mapping::Mapping& mapping) {
  if (mapping.num_ranks() < matrix.num_ranks()) {
    throw ConfigError("hop_stats: mapping covers fewer ranks than the matrix");
  }
  if (mapping.num_nodes() > topo.num_nodes()) {
    throw ConfigError("hop_stats: mapping targets more nodes than the topology has");
  }
  HopStats stats;
  const int n = matrix.num_ranks();
  for (Rank s = 0; s < n; ++s) {
    const NodeId ns = mapping.node_of(s);
    for (Rank d = 0; d < n; ++d) {
      const Count packets = matrix.packets(s, d);
      if (packets == 0) continue;
      const NodeId nd = mapping.node_of(d);
      stats.packets += packets;
      if (ns != nd) {
        stats.packet_hops +=
            packets * static_cast<Count>(topo.hop_distance(ns, nd));
      }
    }
  }
  stats.avg_hops = stats.packets > 0
                       ? static_cast<double>(stats.packet_hops) /
                             static_cast<double>(stats.packets)
                       : 0.0;
  return stats;
}

}  // namespace netloc::metrics
