#include "netloc/metrics/hops.hpp"

#include <memory>

#include "netloc/common/error.hpp"

namespace netloc::metrics {

HopStats hop_stats(const TrafficMatrix& matrix, const topology::Topology& topo,
                   const mapping::Mapping& mapping,
                   const topology::RoutePlan* plan) {
  if (mapping.num_ranks() < matrix.num_ranks()) {
    throw ConfigError("hop_stats: mapping covers fewer ranks than the matrix");
  }
  if (mapping.num_nodes() > topo.num_nodes()) {
    throw ConfigError("hop_stats: mapping targets more nodes than the topology has");
  }
  std::shared_ptr<const topology::RoutePlan> local;
  if (plan == nullptr) {
    // Tableless plan: no precomputed distances, but distance queries
    // still dispatch statically for the paper topologies.
    local = topology::RoutePlan::build(topo, 0);
    plan = local.get();
  } else if (plan->num_nodes() != topo.num_nodes()) {
    throw ConfigError("hop_stats: route plan does not match topology");
  }
  HopStats stats;
  // Stored cells are visited in ascending (src, dst) order — the same
  // order as the dense double loop this replaces — so the accumulation
  // is bit-identical.
  matrix.for_each_nonzero([&](Rank s, Rank d, const TrafficCell& cell) {
    if (cell.packets == 0) return;
    const NodeId ns = mapping.node_of(s);
    const NodeId nd = mapping.node_of(d);
    if (ns != nd) {
      const int hops = plan->hop_distance(ns, nd);
      if (hops < 0) {  // Disconnected under the plan's fault mask.
        stats.unroutable_packets += cell.packets;
        return;
      }
      stats.packet_hops += cell.packets * static_cast<Count>(hops);
    }
    stats.packets += cell.packets;
  });
  stats.avg_hops = stats.packets > 0
                       ? static_cast<double>(stats.packet_hops) /
                             static_cast<double>(stats.packets)
                       : 0.0;
  return stats;
}

}  // namespace netloc::metrics
