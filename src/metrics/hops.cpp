#include "netloc/metrics/hops.hpp"

#include <cstring>
#include <memory>

#include "netloc/common/error.hpp"
#include "netloc/common/thread_pool.hpp"
#include "netloc/metrics/kernel_partition.hpp"

// Portable SIMD for the packetized hop summation (docs/SCALE.md): GCC
// and Clang vector extensions, 4x u64 lanes. Everything is integer
// arithmetic, so lane order cannot change the result — the guard only
// selects between two exact implementations.
#if defined(__GNUC__) || defined(__clang__)
#define NETLOC_HOPS_SIMD 1
#endif

namespace netloc::metrics {

namespace {

#ifdef NETLOC_HOPS_SIMD
typedef std::uint64_t V4u64 __attribute__((vector_size(32)));
#endif

/// Per-worker accumulator. Integer-only, so folding any partition of
/// the cell set reproduces the serial totals exactly.
struct HopTotals {
  Count packet_hops = 0;
  Count packets = 0;
  Count unroutable_packets = 0;
};

/// The scalar kernel over one source-row range — the exact loop body
/// the serial path has always run.
void scalar_rows(const TrafficMatrix& matrix, const mapping::Mapping& mapping,
                 const topology::RoutePlan& plan, Rank begin, Rank end,
                 HopTotals& totals) {
  matrix.for_each_nonzero_rows(
      begin, end, [&](Rank s, Rank d, const TrafficCell& cell) {
        if (cell.packets == 0) return;
        const NodeId ns = mapping.node_of(s);
        const NodeId nd = mapping.node_of(d);
        if (ns != nd) {
          const int hops = plan.hop_distance(ns, nd);
          if (hops < 0) {  // Disconnected under the plan's fault mask.
            totals.unroutable_packets += cell.packets;
            return;
          }
          totals.packet_hops += cell.packets * static_cast<Count>(hops);
        }
        totals.packets += cell.packets;
      });
}

/// Vectorized kernel over one source-row range. Preconditions (checked
/// by the caller): frozen matrix, identity mapping over the matrix's
/// ranks, table window covering every rank, no disconnection — so
/// every cell is inter-node with an in-window non-negative distance,
/// and zero-packet cells contribute zero to both sums, exactly as the
/// scalar kernel's early-out does.
void simd_rows(const TrafficMatrix& matrix, const topology::RoutePlan& plan,
               Rank begin, Rank end, HopTotals& totals) {
  constexpr std::size_t kChunk = 64;
  std::uint64_t packets[kChunk];
  std::uint64_t hops[kChunk];
  for (Rank src = begin; src < end; ++src) {
    const auto dsts = matrix.row_destinations(src);
    const auto cells = matrix.row_cells(src);
    const auto drow = plan.distance_row(src);
    for (std::size_t base = 0; base < dsts.size(); base += kChunk) {
      const std::size_t m = std::min(kChunk, dsts.size() - base);
      // Gather stage: the table lookup is data-dependent, so it stays
      // scalar; the multiply-accumulate below is where the cycles go.
      for (std::size_t i = 0; i < m; ++i) {
        hops[i] = drow[static_cast<std::size_t>(dsts[base + i])];
        packets[i] = cells[base + i].packets;
      }
      std::size_t i = 0;
#ifdef NETLOC_HOPS_SIMD
      V4u64 acc_ph = {0, 0, 0, 0};
      V4u64 acc_p = {0, 0, 0, 0};
      for (; i + 4 <= m; i += 4) {
        V4u64 vp;
        V4u64 vh;
        std::memcpy(&vp, packets + i, sizeof(vp));
        std::memcpy(&vh, hops + i, sizeof(vh));
        acc_ph += vp * vh;
        acc_p += vp;
      }
      totals.packet_hops += acc_ph[0] + acc_ph[1] + acc_ph[2] + acc_ph[3];
      totals.packets += acc_p[0] + acc_p[1] + acc_p[2] + acc_p[3];
#endif
      for (; i < m; ++i) {
        totals.packet_hops += packets[i] * hops[i];
        totals.packets += packets[i];
      }
    }
  }
}

/// True when mapping.node_of is the identity over [0, num_ranks) — the
/// paper's linear mappings and every generated large-scale run.
bool identity_mapping(const mapping::Mapping& mapping, int num_ranks) {
  const auto& raw = mapping.raw();
  for (int r = 0; r < num_ranks; ++r) {
    if (raw[static_cast<std::size_t>(r)] != r) return false;
  }
  return true;
}

}  // namespace

HopStats hop_stats(const TrafficMatrix& matrix, const topology::Topology& topo,
                   const mapping::Mapping& mapping,
                   const topology::RoutePlan* plan, int threads) {
  if (mapping.num_ranks() < matrix.num_ranks()) {
    throw ConfigError("hop_stats: mapping covers fewer ranks than the matrix");
  }
  if (mapping.num_nodes() > topo.num_nodes()) {
    throw ConfigError("hop_stats: mapping targets more nodes than the topology has");
  }
  std::shared_ptr<const topology::RoutePlan> local;
  if (plan == nullptr) {
    // Tableless plan: no precomputed distances, but distance queries
    // still dispatch statically for the paper topologies.
    local = topology::RoutePlan::build(topo, 0);
    plan = local.get();
  } else if (plan->num_nodes() != topo.num_nodes()) {
    throw ConfigError("hop_stats: route plan does not match topology");
  }
  threads = resolve_kernel_threads(threads);

  // The SIMD fast path needs frozen row spans, an in-window identity
  // placement and no unreachable pairs; anything else runs the scalar
  // kernel per range. Both are exact integer kernels — the choice can
  // never change the result.
  const bool simd = matrix.frozen() && !plan->disconnected() &&
                    plan->window() >= matrix.num_ranks() &&
                    identity_mapping(mapping, matrix.num_ranks());

  // Ranges are contiguous and folded in range order, so per-worker
  // integer accumulators reproduce the serial (ascending src, dst)
  // accumulation exactly on any thread count.
  std::vector<RowRange> ranges;
  if (threads > 1 && matrix.frozen()) {
    ranges = partition_rows_by_cells(matrix, threads);
  }
  if (ranges.size() <= 1) {
    ranges.assign(1, {0, matrix.num_ranks()});
  }

  std::vector<HopTotals> partials(ranges.size());
  auto run_range = [&](std::size_t i) {
    if (simd) {
      simd_rows(matrix, *plan, ranges[i].begin, ranges[i].end, partials[i]);
    } else {
      scalar_rows(matrix, mapping, *plan, ranges[i].begin, ranges[i].end,
                  partials[i]);
    }
  };
  if (ranges.size() == 1) {
    run_range(0);
  } else {
    ThreadPool pool(static_cast<int>(ranges.size()));
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      pool.submit([&run_range, i] { run_range(i); });
    }
    pool.wait_idle();
  }

  HopStats stats;
  for (const HopTotals& part : partials) {
    stats.packet_hops += part.packet_hops;
    stats.packets += part.packets;
    stats.unroutable_packets += part.unroutable_packets;
  }
  stats.avg_hops = stats.packets > 0
                       ? static_cast<double>(stats.packet_hops) /
                             static_cast<double>(stats.packets)
                       : 0.0;
  return stats;
}

}  // namespace netloc::metrics
