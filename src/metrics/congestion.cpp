#include "netloc/metrics/congestion.hpp"

#include <algorithm>
#include <cstddef>

#include "netloc/common/error.hpp"
#include "netloc/common/quantile.hpp"
#include "netloc/mapping/mapping.hpp"
#include "netloc/topology/route_plan.hpp"

namespace netloc::metrics {

namespace {

void check_options(const CongestionOptions& options) {
  if (options.threshold <= 0.0) {
    throw ConfigError("congestion: threshold must be > 0");
  }
  if (options.top_k < 1) {
    throw ConfigError("congestion: top_k must be >= 1");
  }
  if (options.bandwidth_bytes_per_s <= 0.0) {
    throw ConfigError("congestion: bandwidth must be > 0");
  }
}

}  // namespace

CongestionSummary congestion_report(std::span<const TrafficMatrix> windows,
                                    Seconds window_seconds,
                                    const topology::RoutePlan& plan,
                                    const mapping::Mapping& mapping,
                                    const CongestionOptions& options,
                                    int threads) {
  check_options(options);
  CongestionSummary summary;
  summary.enabled = true;
  summary.windows = static_cast<int>(windows.size());
  summary.window_seconds = window_seconds;
  summary.threshold = options.threshold;
  const auto num_links = static_cast<std::size_t>(plan.num_links());
  if (windows.empty() || num_links == 0 || window_seconds <= 0.0) {
    // Zero-duration traces carry no rate information; the summary stays
    // structurally valid but all-zero (lint MT006 flags the input).
    return summary;
  }

  const double capacity_bytes =
      options.bandwidth_bytes_per_s * window_seconds;
  std::vector<int> hot_windows(num_links, 0);
  std::vector<double> peak_fraction(num_links, 0.0);
  int exceeded_windows = 0;
  // Per-window scratch, reused across windows. Single-path plans route
  // with the integer kernel (thread-pool parallel, bit-identical at any
  // thread count); multipath plans use the serial weighted kernel whose
  // deterministic order keeps ECMP fractions reproducible.
  std::vector<Bytes> int_loads;
  std::vector<double> weighted_loads;
  for (const TrafficMatrix& matrix : windows) {
    bool window_exceeded = false;
    auto scan = [&](double load_bytes, std::size_t link) {
      const double fraction = load_bytes / capacity_bytes;
      peak_fraction[link] = std::max(peak_fraction[link], fraction);
      if (fraction >= options.threshold) ++hot_windows[link];
      if (fraction > 1.0) window_exceeded = true;
    };
    if (plan.single_path()) {
      int_loads.assign(num_links, 0);
      accumulate_link_loads(matrix, plan, mapping, int_loads, threads);
      for (std::size_t l = 0; l < num_links; ++l) {
        scan(static_cast<double>(int_loads[l]), l);
      }
    } else {
      weighted_loads.assign(num_links, 0.0);
      accumulate_link_loads(matrix, plan, mapping, weighted_loads);
      for (std::size_t l = 0; l < num_links; ++l) {
        scan(weighted_loads[l], l);
      }
    }
    if (window_exceeded) ++exceeded_windows;
  }

  summary.exceeded_window_fraction =
      static_cast<double>(exceeded_windows) / static_cast<double>(windows.size());
  std::vector<WeightedSample> durations;
  std::vector<std::size_t> hot_links;
  for (std::size_t l = 0; l < num_links; ++l) {
    summary.peak_offered_fraction =
        std::max(summary.peak_offered_fraction, peak_fraction[l]);
    if (hot_windows[l] > 0) {
      hot_links.push_back(l);
      const Seconds hot_s = hot_windows[l] * window_seconds;
      durations.push_back({hot_s, 1.0});
      summary.hot_duration_max_s = std::max(summary.hot_duration_max_s, hot_s);
    }
  }
  summary.hot_links = static_cast<int>(hot_links.size());
  if (!durations.empty()) {
    summary.hot_duration_p50_s = weighted_quantile(durations, 0.5);
    summary.hot_duration_p90_s = weighted_quantile(durations, 0.9);
  }

  // Top-k by hot-window count; peak fraction breaks ties, link id makes
  // the ranking total (and therefore deterministic).
  std::sort(hot_links.begin(), hot_links.end(),
            [&](std::size_t a, std::size_t b) {
              if (hot_windows[a] != hot_windows[b]) {
                return hot_windows[a] > hot_windows[b];
              }
              if (peak_fraction[a] != peak_fraction[b]) {
                return peak_fraction[a] > peak_fraction[b];
              }
              return a < b;
            });
  const std::size_t k =
      std::min<std::size_t>(hot_links.size(),
                            static_cast<std::size_t>(options.top_k));
  summary.hotspots.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t l = hot_links[i];
    const auto link = static_cast<LinkId>(l);
    summary.hotspots.push_back({link, hot_windows[l], peak_fraction[l],
                                plan.link_is_global(link)});
  }
  return summary;
}

}  // namespace netloc::metrics
