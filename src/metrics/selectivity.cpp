#include "netloc/metrics/selectivity.hpp"

#include <algorithm>

#include "netloc/common/error.hpp"
#include "netloc/common/quantile.hpp"

namespace netloc::metrics {

namespace {

std::vector<double> source_volumes(const TrafficMatrix& matrix, Rank src) {
  std::vector<double> volumes;
  matrix.for_each_destination(src, [&](Rank, const TrafficCell& cell) {
    if (cell.bytes > 0) volumes.push_back(static_cast<double>(cell.bytes));
  });
  return volumes;
}

}  // namespace

SelectivityStats selectivity(const TrafficMatrix& matrix, double fraction) {
  SelectivityStats stats;
  stats.per_rank.assign(static_cast<std::size_t>(matrix.num_ranks()), -1.0);
  double sum = 0.0;
  int active = 0;
  for (Rank s = 0; s < matrix.num_ranks(); ++s) {
    auto volumes = source_volumes(matrix, s);
    if (volumes.empty()) continue;
    const double count = coverage_count(std::move(volumes), fraction);
    stats.per_rank[static_cast<std::size_t>(s)] = count;
    sum += count;
    stats.max = std::max(stats.max, count);
    ++active;
  }
  stats.mean = active > 0 ? sum / active : 0.0;
  return stats;
}

int peers(const TrafficMatrix& matrix) {
  int peak = 0;
  for (Rank s = 0; s < matrix.num_ranks(); ++s) {
    int degree = 0;
    matrix.for_each_destination(s, [&](Rank, const TrafficCell& cell) {
      if (cell.bytes > 0) ++degree;
    });
    peak = std::max(peak, degree);
  }
  return peak;
}

std::vector<std::pair<Rank, Bytes>> partner_volumes(const TrafficMatrix& matrix,
                                                    Rank src) {
  if (src < 0 || src >= matrix.num_ranks()) {
    throw ConfigError("partner_volumes: rank out of range");
  }
  std::vector<std::pair<Rank, Bytes>> partners;
  matrix.for_each_destination(src, [&](Rank d, const TrafficCell& cell) {
    if (cell.bytes > 0) partners.emplace_back(d, cell.bytes);
  });
  std::sort(partners.begin(), partners.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return partners;
}

std::vector<double> mean_cumulative_share(const TrafficMatrix& matrix,
                                          int max_partners) {
  if (max_partners < 1) throw ConfigError("mean_cumulative_share: max_partners < 1");
  std::vector<double> curve(static_cast<std::size_t>(max_partners), 0.0);
  int active = 0;
  for (Rank s = 0; s < matrix.num_ranks(); ++s) {
    auto volumes = source_volumes(matrix, s);
    if (volumes.empty()) continue;
    ++active;
    std::sort(volumes.begin(), volumes.end(), std::greater<>());
    double total = 0.0;
    for (double v : volumes) total += v;
    double cum = 0.0;
    for (int k = 0; k < max_partners; ++k) {
      if (static_cast<std::size_t>(k) < volumes.size()) {
        cum += volumes[static_cast<std::size_t>(k)];
      }
      curve[static_cast<std::size_t>(k)] += cum / total;
    }
  }
  if (active > 0) {
    for (double& v : curve) v /= active;
  }
  return curve;
}

}  // namespace netloc::metrics
