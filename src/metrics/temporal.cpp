#include "netloc/metrics/temporal.hpp"

#include <algorithm>

#include "netloc/common/error.hpp"

namespace netloc::metrics {

TimeProfile time_profile(const trace::Trace& trace, int windows,
                         const TrafficOptions& options) {
  if (windows < 1) throw ConfigError("time_profile: windows must be >= 1");
  TimeProfile profile;
  const Seconds duration = trace.duration();
  if (duration <= 0.0) {
    profile.window_bytes.assign(static_cast<std::size_t>(windows), 0.0);
    return profile;
  }
  profile.window_seconds = duration / windows;
  profile.window_bytes.assign(static_cast<std::size_t>(windows), 0.0);

  auto window_of = [&](Seconds t) {
    const auto w = static_cast<int>(t / profile.window_seconds);
    return static_cast<std::size_t>(std::clamp(w, 0, windows - 1));
  };

  if (options.include_p2p) {
    for (const auto& e : trace.p2p()) {
      profile.window_bytes[window_of(e.time)] += static_cast<double>(e.bytes);
    }
  }
  if (options.include_collectives) {
    for (const auto& e : trace.collectives()) {
      profile.window_bytes[window_of(e.time)] += static_cast<double>(e.bytes);
    }
  }

  int idle = 0;
  for (const double b : profile.window_bytes) {
    profile.total_bytes += b;
    profile.peak_window_bytes = std::max(profile.peak_window_bytes, b);
    if (b == 0.0) ++idle;
  }
  profile.mean_window_bytes = profile.total_bytes / windows;
  profile.burstiness = profile.mean_window_bytes > 0.0
                           ? profile.peak_window_bytes / profile.mean_window_bytes
                           : 0.0;
  profile.idle_window_fraction = static_cast<double>(idle) / windows;
  return profile;
}

double peak_window_utilization_percent(const TimeProfile& profile,
                                       double link_count,
                                       double bandwidth_bytes_per_s) {
  if (link_count <= 0.0 || bandwidth_bytes_per_s <= 0.0) {
    throw ConfigError("peak_window_utilization: link count and bandwidth must be > 0");
  }
  if (profile.window_seconds <= 0.0) return 0.0;
  return 100.0 * profile.peak_window_bytes /
         (bandwidth_bytes_per_s * profile.window_seconds * link_count);
}

}  // namespace netloc::metrics
