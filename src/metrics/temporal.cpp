#include "netloc/metrics/temporal.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "netloc/common/error.hpp"

namespace netloc::metrics {

bool durations_agree(Seconds expected, Seconds actual) {
  const double scale = std::max({1.0, std::abs(expected), std::abs(actual)});
  return std::abs(actual - expected) <= 1e-9 * scale;
}

TimeProfile time_profile(const trace::Trace& trace, int windows,
                         const TrafficOptions& options) {
  TimeProfileAccumulator accumulator(trace.duration(), windows, options);
  trace::emit(trace, accumulator);
  return accumulator.profile();
}

TimeProfileAccumulator::TimeProfileAccumulator(Seconds duration, int windows,
                                               const TrafficOptions& options)
    : windows_(windows), options_(options), duration_(duration) {
  if (windows < 1) throw ConfigError("time_profile: windows must be >= 1");
  profile_.window_bytes.assign(static_cast<std::size_t>(windows), 0.0);
  if (duration > 0.0) {
    profile_.window_seconds = duration / windows;
  }
}

void TimeProfileAccumulator::on_begin(std::string_view /*app_name*/,
                                      int /*num_ranks*/) {}

void TimeProfileAccumulator::add_volume(Seconds time, Bytes bytes) {
  if (profile_.window_seconds <= 0.0) return;  // Zero-duration trace.
  const auto w = static_cast<int>(time / profile_.window_seconds);
  profile_.window_bytes[static_cast<std::size_t>(
      std::clamp(w, 0, windows_ - 1))] += static_cast<double>(bytes);
}

void TimeProfileAccumulator::on_p2p(const trace::P2PEvent& event) {
  if (options_.include_p2p) add_volume(event.time, event.bytes);
}

void TimeProfileAccumulator::on_collective(const trace::CollectiveEvent& event) {
  if (options_.include_collectives) add_volume(event.time, event.bytes);
}

void TimeProfileAccumulator::on_end(Seconds duration) {
  // Every event was binned against the constructor duration; a producer
  // reporting a different execution time at on_end() means those bins
  // are skewed. Record it (callers emit lint TR011) rather than ignore
  // it silently.
  end_duration_ = duration;
  end_duration_mismatch_ = !durations_agree(duration_, duration);
  assert(!end_duration_mismatch_ &&
         "TimeProfileAccumulator: on_end duration disagrees with the "
         "constructor duration");
  if (profile_.window_seconds <= 0.0) return;  // All-zero profile.
  profile_.total_bytes = 0.0;
  profile_.peak_window_bytes = 0.0;
  int idle = 0;
  for (const double b : profile_.window_bytes) {
    profile_.total_bytes += b;
    profile_.peak_window_bytes = std::max(profile_.peak_window_bytes, b);
    if (b == 0.0) ++idle;
  }
  profile_.mean_window_bytes = profile_.total_bytes / windows_;
  profile_.burstiness =
      profile_.mean_window_bytes > 0.0
          ? profile_.peak_window_bytes / profile_.mean_window_bytes
          : 0.0;
  profile_.idle_window_fraction = static_cast<double>(idle) / windows_;
}

double peak_window_utilization_percent(const TimeProfile& profile,
                                       double link_count,
                                       double bandwidth_bytes_per_s) {
  if (link_count <= 0.0 || bandwidth_bytes_per_s <= 0.0) {
    throw ConfigError("peak_window_utilization: link count and bandwidth must be > 0");
  }
  if (profile.window_seconds <= 0.0) return 0.0;
  return 100.0 * profile.peak_window_bytes /
         (bandwidth_bytes_per_s * profile.window_seconds * link_count);
}

}  // namespace netloc::metrics
