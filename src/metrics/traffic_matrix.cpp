#include "netloc/metrics/traffic_matrix.hpp"

#include <map>
#include <tuple>

#include "netloc/collectives/translate.hpp"
#include "netloc/common/error.hpp"
#include "netloc/common/units.hpp"

namespace netloc::metrics {

namespace {

int checked_ranks(int num_ranks) {
  if (num_ranks < 1 || num_ranks > TrafficMatrix::kMaxRanks) {
    throw ConfigError("TrafficMatrix: num_ranks must be in [1, " +
                      std::to_string(TrafficMatrix::kMaxRanks) + "]");
  }
  return num_ranks;
}

}  // namespace

TrafficMatrix::TrafficMatrix(int num_ranks)
    : n_(checked_ranks(num_ranks)), cells_(n_, n_) {}

void TrafficMatrix::add_message(Rank src, Rank dst, Bytes bytes) {
  add_messages(src, dst, bytes, 1);
}

void TrafficMatrix::add_messages(Rank src, Rank dst, Bytes bytes, Count count) {
  if (src < 0 || src >= n_ || dst < 0 || dst >= n_) {
    throw ConfigError("TrafficMatrix: rank out of range");
  }
  if (frozen()) {
    throw ConfigError("TrafficMatrix: cannot add messages after freeze()");
  }
  if (src == dst || count == 0) return;
  TrafficCell& cell = cells_.slot(src, dst);
  cell.bytes += bytes * count;
  const Count packets = packets_for(bytes) * count;
  cell.packets += packets;
  total_bytes_ += bytes * count;
  total_packets_ += packets;
}

std::vector<mapping::TrafficEdge> TrafficMatrix::edges() const {
  std::vector<mapping::TrafficEdge> result;
  for_each_nonzero([&](Rank s, Rank d, const TrafficCell& cell) {
    if (cell.bytes > 0) {
      result.push_back({s, d, static_cast<double>(cell.bytes)});
    }
  });
  return result;
}

std::vector<Rank> TrafficMatrix::destinations_of(Rank src) const {
  std::vector<Rank> result;
  for_each_destination(src, [&](Rank d, const TrafficCell& cell) {
    if (cell.bytes > 0) result.push_back(d);
  });
  return result;
}

TrafficMatrix TrafficMatrix::from_trace(const trace::Trace& trace,
                                        const TrafficOptions& options) {
  TrafficMatrix matrix(trace.num_ranks());
  if (options.include_p2p) {
    for (const auto& e : trace.p2p()) {
      matrix.add_message(e.src, e.dst, e.bytes);
    }
  }
  if (options.include_collectives) {
    // Group identical collectives so each distinct pattern is expanded
    // once. Timing is irrelevant for the matrix.
    std::map<std::tuple<trace::CollectiveOp, Rank, Bytes>, Count> groups;
    for (const auto& e : trace.collectives()) {
      ++groups[{e.op, e.root, e.bytes}];
    }
    for (const auto& [key, count] : groups) {
      const auto [op, root, bytes] = key;
      const Count repeat = count;
      if (options.collective_algorithm == collectives::Algorithm::FlatDirect) {
        // Flat path keeps the trace's byte totals exact (no payload
        // round trip).
        collectives::for_each_pair(
            op, root, trace.num_ranks(), bytes,
            [&](Rank src, Rank dst, Bytes message_bytes) {
              matrix.add_messages(src, dst, message_bytes, repeat);
            });
      } else {
        const Bytes payload =
            collectives::payload_from_flat_total(op, trace.num_ranks(), bytes);
        collectives::for_each_message(
            options.collective_algorithm, op, root, trace.num_ranks(), payload,
            [&](Rank src, Rank dst, Bytes message_bytes, Count messages) {
              matrix.add_messages(src, dst, message_bytes, messages * repeat);
            });
      }
    }
  }
  matrix.freeze();
  return matrix;
}

}  // namespace netloc::metrics
