#include "netloc/metrics/traffic_matrix.hpp"

#include <map>
#include <tuple>

#include "netloc/collectives/translate.hpp"
#include "netloc/common/error.hpp"
#include "netloc/common/units.hpp"

namespace netloc::metrics {

TrafficMatrix::TrafficMatrix(int num_ranks) : n_(num_ranks) {
  if (num_ranks < 1) throw ConfigError("TrafficMatrix: num_ranks must be >= 1");
  const auto cells = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  bytes_.assign(cells, 0);
  packets_.assign(cells, 0);
}

void TrafficMatrix::add_message(Rank src, Rank dst, Bytes bytes) {
  add_messages(src, dst, bytes, 1);
}

void TrafficMatrix::add_messages(Rank src, Rank dst, Bytes bytes, Count count) {
  if (src < 0 || src >= n_ || dst < 0 || dst >= n_) {
    throw ConfigError("TrafficMatrix: rank out of range");
  }
  if (src == dst || count == 0) return;
  const auto i = index(src, dst);
  bytes_[i] += bytes * count;
  const Count packets = packets_for(bytes) * count;
  packets_[i] += packets;
  total_bytes_ += bytes * count;
  total_packets_ += packets;
}

std::vector<mapping::TrafficEdge> TrafficMatrix::edges() const {
  std::vector<mapping::TrafficEdge> result;
  for (Rank s = 0; s < n_; ++s) {
    for (Rank d = 0; d < n_; ++d) {
      const Bytes b = bytes_[index(s, d)];
      if (b > 0) {
        result.push_back({s, d, static_cast<double>(b)});
      }
    }
  }
  return result;
}

std::vector<Rank> TrafficMatrix::destinations_of(Rank src) const {
  std::vector<Rank> result;
  for (Rank d = 0; d < n_; ++d) {
    if (bytes_[index(src, d)] > 0) result.push_back(d);
  }
  return result;
}

TrafficMatrix TrafficMatrix::from_trace(const trace::Trace& trace,
                                        const TrafficOptions& options) {
  TrafficMatrix matrix(trace.num_ranks());
  if (options.include_p2p) {
    for (const auto& e : trace.p2p()) {
      matrix.add_message(e.src, e.dst, e.bytes);
    }
  }
  if (options.include_collectives) {
    // Group identical collectives so each distinct pattern is expanded
    // once. Timing is irrelevant for the matrix.
    std::map<std::tuple<trace::CollectiveOp, Rank, Bytes>, Count> groups;
    for (const auto& e : trace.collectives()) {
      ++groups[{e.op, e.root, e.bytes}];
    }
    for (const auto& [key, count] : groups) {
      const auto [op, root, bytes] = key;
      const Count repeat = count;
      if (options.collective_algorithm == collectives::Algorithm::FlatDirect) {
        // Flat path keeps the trace's byte totals exact (no payload
        // round trip).
        collectives::for_each_pair(
            op, root, trace.num_ranks(), bytes,
            [&](Rank src, Rank dst, Bytes message_bytes) {
              matrix.add_messages(src, dst, message_bytes, repeat);
            });
      } else {
        const Bytes payload =
            collectives::payload_from_flat_total(op, trace.num_ranks(), bytes);
        collectives::for_each_message(
            options.collective_algorithm, op, root, trace.num_ranks(), payload,
            [&](Rank src, Rank dst, Bytes message_bytes, Count messages) {
              matrix.add_messages(src, dst, message_bytes, messages * repeat);
            });
      }
    }
  }
  return matrix;
}

}  // namespace netloc::metrics
