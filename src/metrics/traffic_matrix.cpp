#include "netloc/metrics/traffic_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

#include "netloc/collectives/translate.hpp"
#include "netloc/common/error.hpp"
#include "netloc/common/units.hpp"

namespace netloc::metrics {

namespace {

int checked_ranks(int num_ranks) {
  if (num_ranks < 1 || num_ranks > TrafficMatrix::kMaxRanks) {
    throw ConfigError("TrafficMatrix: num_ranks must be in [1, " +
                      std::to_string(TrafficMatrix::kMaxRanks) + "]");
  }
  return num_ranks;
}

/// Debug check that a budgeted matrix's open buffer honours the budget
/// (at one-source-row granularity: a budget below one row's footprint
/// is met with a single-row strip).
void assert_open_budget(const TrafficMatrix& matrix, std::size_t budget) {
#ifndef NDEBUG
  if (budget > 0) {
    const std::size_t row_bytes =
        static_cast<std::size_t>(matrix.num_ranks()) * sizeof(TrafficCell);
    assert(matrix.open_buffer_bytes() <= std::max(budget, row_bytes));
  }
#else
  (void)matrix;
  (void)budget;
#endif
}

}  // namespace

void expand_collective_groups(TrafficMatrix& matrix,
                              const TrafficOptions& options,
                              const CollectiveGroups& groups) {
  const int num_ranks = matrix.num_ranks();
  if (options.collective_algo == collectives::CollectiveAlgo::Hierarchical) {
    if (options.collective_algorithm != collectives::Algorithm::FlatDirect) {
      throw ConfigError(
          "TrafficOptions: hierarchical collectives require the FlatDirect "
          "pattern (collective_algorithm ablations are flat-only)");
    }
    if (!options.collective_node_of.empty() &&
        static_cast<int>(options.collective_node_of.size()) != num_ranks) {
      throw ConfigError(
          "TrafficOptions: collective_node_of covers " +
          std::to_string(options.collective_node_of.size()) +
          " ranks but the trace has " + std::to_string(num_ranks));
    }
    if (options.collective_node_of.empty() &&
        options.collective_ranks_per_node < 1) {
      throw ConfigError(
          "TrafficOptions: hierarchical collectives need a rank -> node "
          "view (collective_node_of or collective_ranks_per_node)");
    }
    const collectives::NodeGroups node_groups =
        options.collective_node_of.empty()
            ? collectives::NodeGroups::blocked(num_ranks,
                                               options.collective_ranks_per_node)
            : collectives::NodeGroups(options.collective_node_of);
    for (const auto& [key, count] : groups) {
      const auto [op, root, bytes] = key;
      const Count repeat = count;
      collectives::for_each_hierarchical_pair(
          op, root, num_ranks, bytes, node_groups,
          [&](Rank src, Rank dst, Bytes message_bytes) {
            matrix.add_messages(src, dst, message_bytes, repeat);
          });
    }
    return;
  }
  for (const auto& [key, count] : groups) {
    const auto [op, root, bytes] = key;
    const Count repeat = count;
    if (options.collective_algorithm == collectives::Algorithm::FlatDirect) {
      // Flat path keeps the trace's byte totals exact (no payload
      // round trip).
      collectives::for_each_pair(
          op, root, num_ranks, bytes,
          [&](Rank src, Rank dst, Bytes message_bytes) {
            matrix.add_messages(src, dst, message_bytes, repeat);
          });
    } else {
      const Bytes payload =
          collectives::payload_from_flat_total(op, num_ranks, bytes);
      collectives::for_each_message(
          options.collective_algorithm, op, root, num_ranks, payload,
          [&](Rank src, Rank dst, Bytes message_bytes, Count messages) {
            matrix.add_messages(src, dst, message_bytes, messages * repeat);
          });
    }
  }
}

TrafficMatrix::TrafficMatrix(int num_ranks, std::size_t open_budget_bytes)
    : n_(checked_ranks(num_ranks)), cells_(n_, n_, open_budget_bytes) {}

void TrafficMatrix::add_message(Rank src, Rank dst, Bytes bytes) {
  add_messages(src, dst, bytes, 1);
}

void TrafficMatrix::add_messages(Rank src, Rank dst, Bytes bytes, Count count) {
  if (src < 0 || src >= n_ || dst < 0 || dst >= n_) {
    throw ConfigError("TrafficMatrix: rank out of range");
  }
  if (frozen()) {
    throw ConfigError("TrafficMatrix: cannot add messages after freeze()");
  }
  if (src == dst || count == 0) return;
  TrafficCell& cell = cells_.slot(src, dst);
  cell.bytes += bytes * count;
  const Count packets = packets_for(bytes) * count;
  cell.packets += packets;
  total_bytes_ += bytes * count;
  total_packets_ += packets;
}

void TrafficMatrix::add_cell(Rank src, Rank dst, Bytes bytes, Count packets) {
  if (src < 0 || src >= n_ || dst < 0 || dst >= n_) {
    throw ConfigError("TrafficMatrix: rank out of range");
  }
  if (frozen()) {
    throw ConfigError("TrafficMatrix: cannot add messages after freeze()");
  }
  if (src == dst || (bytes == 0 && packets == 0)) return;
  TrafficCell& cell = cells_.slot(src, dst);
  cell.bytes += bytes;
  cell.packets += packets;
  total_bytes_ += bytes;
  total_packets_ += packets;
}

std::vector<mapping::TrafficEdge> TrafficMatrix::edges() const {
  std::vector<mapping::TrafficEdge> result;
  for_each_nonzero([&](Rank s, Rank d, const TrafficCell& cell) {
    if (cell.bytes > 0) {
      result.push_back({s, d, static_cast<double>(cell.bytes)});
    }
  });
  return result;
}

std::vector<Rank> TrafficMatrix::destinations_of(Rank src) const {
  std::vector<Rank> result;
  for_each_destination(src, [&](Rank d, const TrafficCell& cell) {
    if (cell.bytes > 0) result.push_back(d);
  });
  return result;
}

TrafficMatrix TrafficMatrix::from_trace(const trace::Trace& trace,
                                        const TrafficOptions& options) {
  TrafficAccumulator accumulator(options);
  trace::emit(trace, accumulator);
  return accumulator.take();
}

TrafficAccumulator::TrafficAccumulator(const TrafficOptions& options)
    : options_(options) {}

void TrafficAccumulator::on_begin(std::string_view /*app_name*/,
                                  int num_ranks) {
  matrix_.emplace(num_ranks, options_.memory_budget_bytes);
  assert_open_budget(*matrix_, options_.memory_budget_bytes);
  ended_ = false;
  groups_.clear();
}

void TrafficAccumulator::on_p2p(const trace::P2PEvent& event) {
  if (!matrix_) {
    throw ConfigError("TrafficAccumulator: on_p2p() before on_begin()");
  }
  if (options_.include_p2p) {
    matrix_->add_message(event.src, event.dst, event.bytes);
  }
}

void TrafficAccumulator::on_collective(const trace::CollectiveEvent& event) {
  if (!matrix_) {
    throw ConfigError("TrafficAccumulator: on_collective() before on_begin()");
  }
  if (options_.include_collectives) {
    // Group identical collectives so each distinct pattern is expanded
    // once, at on_end(). Timing is irrelevant for the matrix.
    ++groups_[{event.op, event.root, event.bytes}];
  }
}

void TrafficAccumulator::on_end(Seconds /*duration*/) {
  if (!matrix_) {
    throw ConfigError("TrafficAccumulator: on_end() before on_begin()");
  }
  expand_collective_groups(*matrix_, options_, groups_);
  groups_.clear();
  matrix_->freeze();
  ended_ = true;
}

TrafficMatrix TrafficAccumulator::take() {
  if (!matrix_ || !ended_) {
    throw ConfigError("TrafficAccumulator: take() before on_end()");
  }
  TrafficMatrix result = std::move(*matrix_);
  matrix_.reset();
  ended_ = false;
  return result;
}

const TrafficMatrix& TrafficAccumulator::matrix() const {
  if (!matrix_ || !ended_) {
    throw ConfigError("TrafficAccumulator: matrix() before on_end()");
  }
  return *matrix_;
}

DualTrafficAccumulator::DualTrafficAccumulator(const TrafficOptions& options)
    : options_(options) {}

void DualTrafficAccumulator::on_begin(std::string_view /*app_name*/,
                                      int num_ranks) {
  p2p_.emplace(num_ranks, options_.memory_budget_bytes);
  assert_open_budget(*p2p_, options_.memory_budget_bytes);
  ended_ = false;
  groups_.clear();
}

void DualTrafficAccumulator::on_p2p(const trace::P2PEvent& event) {
  if (!p2p_) {
    throw ConfigError("DualTrafficAccumulator: on_p2p() before on_begin()");
  }
  p2p_->add_message(event.src, event.dst, event.bytes);
}

void DualTrafficAccumulator::on_collective(const trace::CollectiveEvent& event) {
  if (!p2p_) {
    throw ConfigError(
        "DualTrafficAccumulator: on_collective() before on_begin()");
  }
  if (options_.include_collectives) {
    ++groups_[{event.op, event.root, event.bytes}];
  }
}

void DualTrafficAccumulator::on_end(Seconds /*duration*/) {
  if (!p2p_) {
    throw ConfigError("DualTrafficAccumulator: on_end() before on_begin()");
  }
  // Freeze first: the dense buffer is released before take_full()
  // opens the full matrix's, so the two never coexist.
  p2p_->freeze();
  ended_ = true;
}

TrafficMatrix DualTrafficAccumulator::take_full() {
  if (!p2p_ || !ended_) {
    throw ConfigError(
        "DualTrafficAccumulator: take_full() before on_end() or after "
        "take_p2p()");
  }
  TrafficMatrix full(p2p_->num_ranks(), options_.memory_budget_bytes);
  assert_open_budget(full, options_.memory_budget_bytes);
  if (options_.include_p2p) {
    // Replaying aggregated cells instead of individual messages is
    // exact: cell sums are integers, and the per-message Eq. 3 packet
    // counts are carried over rather than recomputed. The p2p matrix is
    // frozen (its open buffer released), so only `full`'s strip is open
    // during the replay.
    p2p_->for_each_nonzero([&](Rank src, Rank dst, const TrafficCell& cell) {
      full.add_cell(src, dst, cell.bytes, cell.packets);
    });
  }
  expand_collective_groups(full, options_, groups_);
  groups_.clear();
  full.freeze();
  return full;
}

TrafficMatrix DualTrafficAccumulator::take_p2p() {
  if (!p2p_ || !ended_) {
    throw ConfigError("DualTrafficAccumulator: take_p2p() before on_end()");
  }
  TrafficMatrix result = std::move(*p2p_);
  p2p_.reset();
  ended_ = false;
  return result;
}

}  // namespace netloc::metrics
