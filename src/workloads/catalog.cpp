#include "netloc/workloads/catalog.hpp"

#include <algorithm>
#include <tuple>

#include "netloc/common/error.hpp"

namespace netloc::workloads {

std::string CatalogEntry::label() const {
  std::string l = app + "/" + std::to_string(ranks);
  if (variant > 0) l += static_cast<char>('a' + variant);
  return l;
}

const std::vector<CatalogEntry>& catalog() {
  // Transcribed from Table 1. The AMG/216 execution time is derived
  // from the table's own volume/throughput columns (136.9 MB at
  // 461.5 MB/s) because the printed time is inconsistent with them.
  static const std::vector<CatalogEntry> entries = {
      {"AMG", 8, 0, 0.03, 3.0, 100.0, false},
      {"AMG", 27, 0, 0.16, 13.6, 100.0, false},
      {"AMG", 216, 0, 0.2966, 136.9, 100.0, false},
      {"AMG", 1728, 0, 2.92, 1208.0, 100.0, false},
      {"AMR_Miniapp", 64, 0, 12.93, 3106.0, 99.66, false},
      {"AMR_Miniapp", 1728, 0, 42.69, 96969.0, 99.45, false},
      {"BigFFT", 9, 0, 0.18, 299.2, 0.0, false},
      {"BigFFT", 100, 0, 0.50, 3169.0, 0.0, false},
      {"BigFFT", 1024, 0, 1.89, 32064.0, 0.0, false},
      {"CNS", 64, 0, 572.19, 9292.0, 100.0, true},
      {"CNS", 256, 0, 169.05, 15227.0, 100.0, true},
      {"CNS", 256, 1, 150.92, 15227.0, 100.0, true},
      {"CNS", 1024, 0, 67.54, 34131.0, 100.0, true},
      {"BoxlibMG", 64, 0, 231.42, 23742.0, 99.94, false},
      {"BoxlibMG", 256, 0, 62.01, 44535.0, 99.95, false},
      {"BoxlibMG", 256, 1, 60.28, 44535.0, 99.95, false},
      {"BoxlibMG", 1024, 0, 20.88, 75181.0, 99.94, false},
      {"MOCFE", 64, 0, 0.38, 19.0, 5.01, true},
      {"MOCFE", 256, 0, 1.10, 81.6, 5.51, true},
      {"MOCFE", 1024, 0, 3.95, 686.2, 6.96, true},
      {"Nekbone", 64, 0, 11.83, 5307.0, 100.0, true},
      {"Nekbone", 256, 0, 3.17, 1272.0, 50.66, true},
      {"Nekbone", 1024, 0, 5.15, 13232.0, 99.98, true},
      {"CrystalRouter", 10, 0, 0.14, 133.8, 100.0, false},
      {"CrystalRouter", 100, 0, 0.71, 3439.9, 100.0, false},
      {"CrystalRouter", 1000, 0, 1.28, 115521.0, 100.0, false},
      {"CMC_2D", 64, 0, 842.80, 16.0, 0.0, false},
      {"CMC_2D", 256, 0, 208.44, 16.1, 0.0, false},
      {"CMC_2D", 1024, 0, 58.85, 16.4, 0.0, false},
      {"LULESH", 64, 0, 54.14, 3585.0, 100.0, false},
      {"LULESH", 64, 1, 44.03, 3585.0, 100.0, false},
      {"LULESH", 512, 0, 50.24, 33548.0, 100.0, false},
      {"FillBoundary", 125, 0, 2.32, 10209.0, 100.0, false},
      {"FillBoundary", 1000, 0, 5.26, 92323.0, 100.0, false},
      {"MiniFE", 18, 0, 59.70, 1615.0, 100.0, false},
      {"MiniFE", 144, 0, 61.06, 16586.0, 99.99, false},
      {"MiniFE", 1152, 0, 84.75, 147264.0, 99.96, false},
      {"MultiGrid_C", 125, 0, 0.77, 374.0, 100.0, false},
      {"MultiGrid_C", 1000, 0, 3.57, 2973.0, 100.0, false},
      {"PARTISN", 168, 0, 2.2e6, 42123.0, 99.96, true},
      {"SNAP", 168, 0, 1.2e6, 128561.0, 100.0, true},
  };
  return entries;
}

std::vector<CatalogEntry> catalog_for(const std::string& app) {
  std::vector<CatalogEntry> result;
  for (const auto& e : catalog()) {
    if (e.app == app) result.push_back(e);
  }
  std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
    return std::tie(a.ranks, a.variant) < std::tie(b.ranks, b.variant);
  });
  return result;
}

const CatalogEntry& catalog_entry(const std::string& app, int ranks, int variant) {
  for (const auto& e : catalog()) {
    if (e.app == app && e.ranks == ranks && e.variant == variant) return e;
  }
  throw ConfigError("catalog_entry: no entry for " + app + "/" +
                    std::to_string(ranks) + " variant " + std::to_string(variant));
}

std::vector<std::string> catalog_apps() {
  std::vector<std::string> apps;
  for (const auto& e : catalog()) {
    if (std::find(apps.begin(), apps.end(), e.app) == apps.end()) {
      apps.push_back(e.app);
    }
  }
  return apps;
}

}  // namespace netloc::workloads
