// Internal: randomized partner-graph helpers shared by the generators
// whose communication structure is data-dependent in the real
// application (Boxlib CNS box assignment, AMR refinement, MOCFE angular
// decomposition, SNAP group sweeps).
#pragma once

#include "netloc/common/prng.hpp"
#include "netloc/workloads/pattern_builder.hpp"

namespace netloc::workloads::detail {

struct RandomPartnerOptions {
  int partners_per_rank = 8;  ///< Heavy partners added per source rank.
  double base_weight = 1.0;   ///< Weight of a rank's heaviest partner.
  double decay = 0.8;         ///< Geometric decay across its partners.
  /// Scale each partner's weight by (distance / num_ranks) ^ bias;
  /// 0 = distance-blind, > 0 favours far partners (SNAP-style sweeps).
  double distance_bias = 0.0;
  bool symmetric = true;  ///< Also add the reverse demand.
};

/// For every rank, draw `partners_per_rank` distinct random partners
/// and add geometrically decaying demands. Deterministic in `rng`.
inline void add_random_partners(PatternBuilder& builder, int num_ranks,
                                const RandomPartnerOptions& options,
                                Xoshiro256& rng) {
  for (Rank src = 0; src < num_ranks; ++src) {
    double weight = options.base_weight;
    int added = 0;
    // Rejection loop with a generous bound; duplicate partners just
    // merge their weights in the builder, which is acceptable noise.
    for (int attempt = 0; added < options.partners_per_rank &&
                          attempt < options.partners_per_rank * 4;
         ++attempt) {
      const auto dst = static_cast<Rank>(
          rng.next_below(static_cast<std::uint64_t>(num_ranks)));
      if (dst == src) continue;
      double w = weight;
      if (options.distance_bias > 0.0) {
        const double dist =
            static_cast<double>(dst > src ? dst - src : src - dst) / num_ranks;
        double scale = 1.0;
        for (int b = 0; b < static_cast<int>(options.distance_bias); ++b) {
          scale *= dist;
        }
        w *= 0.1 + 0.9 * scale;
      }
      builder.p2p(src, dst, w);
      if (options.symmetric) builder.p2p(dst, src, w);
      weight *= options.decay;
      ++added;
    }
  }
}

}  // namespace netloc::workloads::detail
