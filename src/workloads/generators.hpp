// Internal: factory functions for the individual generators, consumed
// by the registry. One translation unit per application.
#pragma once

#include <memory>

#include "netloc/workloads/workload.hpp"

namespace netloc::workloads::detail {

std::unique_ptr<WorkloadGenerator> make_amg();
std::unique_ptr<WorkloadGenerator> make_amr_miniapp();
std::unique_ptr<WorkloadGenerator> make_bigfft();
std::unique_ptr<WorkloadGenerator> make_cns();
std::unique_ptr<WorkloadGenerator> make_boxlib_mg();
std::unique_ptr<WorkloadGenerator> make_mocfe();
std::unique_ptr<WorkloadGenerator> make_nekbone();
std::unique_ptr<WorkloadGenerator> make_crystal_router();
std::unique_ptr<WorkloadGenerator> make_cmc_2d();
std::unique_ptr<WorkloadGenerator> make_lulesh();
std::unique_ptr<WorkloadGenerator> make_fillboundary();
std::unique_ptr<WorkloadGenerator> make_minife();
std::unique_ptr<WorkloadGenerator> make_multigrid_c();
std::unique_ptr<WorkloadGenerator> make_partisn();
std::unique_ptr<WorkloadGenerator> make_snap();
// Scale-tier families (workloads/scale.hpp); no Table 1 entries.
std::unique_ptr<WorkloadGenerator> make_halo3d();
std::unique_ptr<WorkloadGenerator> make_a2ablock();

}  // namespace netloc::workloads::detail
