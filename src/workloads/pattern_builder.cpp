#include "netloc/workloads/pattern_builder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>

#include "netloc/common/error.hpp"

namespace netloc::workloads {

PatternBuilder::PatternBuilder(std::string app_name, int num_ranks)
    : app_name_(std::move(app_name)), num_ranks_(num_ranks) {
  if (num_ranks < 1) throw ConfigError("PatternBuilder: num_ranks must be >= 1");
}

void PatternBuilder::p2p(Rank src, Rank dst, double weight) {
  if (src < 0 || src >= num_ranks_ || dst < 0 || dst >= num_ranks_) {
    throw ConfigError("PatternBuilder: p2p rank out of range");
  }
  if (weight < 0.0) throw ConfigError("PatternBuilder: negative weight");
  if (src == dst || weight == 0.0) return;
  p2p_.push_back({src, dst, weight});
}

void PatternBuilder::collective(trace::CollectiveOp op, Rank root, double weight,
                                int calls) {
  if (root < 0 || root >= num_ranks_) {
    throw ConfigError("PatternBuilder: collective root out of range");
  }
  if (weight < 0.0) throw ConfigError("PatternBuilder: negative weight");
  if (calls < 0) throw ConfigError("PatternBuilder: negative call count");
  if (weight == 0.0 && calls == 0) return;
  collectives_.push_back({op, root, weight, calls});
}

trace::Trace PatternBuilder::build(const BuildParams& params) const {
  trace::TraceCollector collector;
  build_into(params, collector);
  return collector.take();
}

void PatternBuilder::build_into(const BuildParams& params,
                                trace::EventSink& sink) const {
  if (params.iterations < 1) {
    throw ConfigError("PatternBuilder: iterations must be >= 1");
  }
  if (params.duration <= 0.0) {
    throw ConfigError("PatternBuilder: duration must be > 0");
  }
  sink.on_begin(app_name_, num_ranks_);

  // ---- Point-to-point -------------------------------------------------
  if (!p2p_.empty() && params.p2p_bytes > 0) {
    // Merge duplicate pairs so apportioning sees each pair once.
    auto demands = p2p_;
    std::sort(demands.begin(), demands.end(), [](const auto& a, const auto& b) {
      return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
    });
    std::size_t out = 0;
    for (std::size_t i = 0; i < demands.size();) {
      std::size_t j = i;
      double sum = 0.0;
      while (j < demands.size() && demands[j].src == demands[i].src &&
             demands[j].dst == demands[i].dst) {
        sum += demands[j].weight;
        ++j;
      }
      demands[out++] = {demands[i].src, demands[i].dst, sum};
      i = j;
    }
    demands.resize(out);

    double total_weight = 0.0;
    for (const auto& d : demands) total_weight += d.weight;

    // Largest-remainder-free apportioning: cumulative rounding keeps
    // the total exact and each pair within one byte of its share.
    std::vector<Bytes> pair_bytes(demands.size());
    double cum_weight = 0.0;
    Bytes cum_bytes = 0;
    std::size_t largest = 0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      cum_weight += demands[i].weight;
      const auto target = static_cast<Bytes>(std::llround(
          cum_weight / total_weight * static_cast<double>(params.p2p_bytes)));
      pair_bytes[i] = target - cum_bytes;
      cum_bytes = target;
      if (pair_bytes[i] > pair_bytes[largest]) largest = i;
    }
    // Every pair in the pattern must be visible in the trace (the peers
    // metric counts partners regardless of volume): bump zero-byte
    // pairs to one byte, compensating on the largest pair.
    Bytes bumped = 0;
    for (auto& b : pair_bytes) {
      if (b == 0) {
        b = 1;
        ++bumped;
      }
    }
    if (bumped > 0 && pair_bytes[largest] > bumped) pair_bytes[largest] -= bumped;

    const auto messages_for = [&params](Bytes bytes) {
      const auto by_size = static_cast<int>(
          bytes / std::max<Bytes>(1, params.preferred_message_bytes));
      return std::clamp(by_size, 1, params.iterations);
    };
    std::uint64_t p2p_events = 0;
    for (const Bytes bytes : pair_bytes) {
      p2p_events += static_cast<std::uint64_t>(messages_for(bytes));
    }
    sink.on_reserve(p2p_events, 0);

    for (std::size_t i = 0; i < demands.size(); ++i) {
      const Bytes bytes = pair_bytes[i];
      const int messages = messages_for(bytes);
      Bytes emitted = 0;
      for (int k = 0; k < messages; ++k) {
        const auto upto = static_cast<Bytes>(
            static_cast<double>(bytes) * (k + 1) / messages + 0.5);
        const Bytes slice = std::min(bytes, upto) - emitted;
        emitted += slice;
        const Seconds t = params.duration * (k + 0.5) / messages;
        sink.on_p2p({demands[i].src, demands[i].dst, slice, t});
      }
    }
  }

  // ---- Collectives ------------------------------------------------------
  // Byte shares are apportioned by weight (exactly, Bresenham-style);
  // each demand is emitted as its configured number of calls. A demand
  // whose share rounds to zero bytes is still emitted — zero-volume
  // collective calls are the common case for iterative solvers and
  // still cost one packet per translated message.
  if (!collectives_.empty()) {
    double total_weight = 0.0;
    std::uint64_t coll_events = 0;
    for (const auto& c : collectives_) {
      total_weight += c.weight;
      coll_events += static_cast<std::uint64_t>(
          c.calls > 0 ? c.calls : params.iterations);
    }
    sink.on_reserve(0, coll_events);
    double cum_weight = 0.0;
    Bytes cum_bytes = 0;
    for (const auto& c : collectives_) {
      Bytes share = 0;
      if (total_weight > 0.0 && params.collective_bytes > 0) {
        cum_weight += c.weight;
        const auto target = static_cast<Bytes>(
            std::llround(cum_weight / total_weight *
                         static_cast<double>(params.collective_bytes)));
        share = target - cum_bytes;
        cum_bytes = target;
      }
      const int calls = c.calls > 0 ? c.calls : params.iterations;
      Bytes emitted = 0;
      for (int k = 0; k < calls; ++k) {
        const auto upto = static_cast<Bytes>(
            static_cast<double>(share) * (k + 1) / calls + 0.5);
        const Bytes slice = std::min(share, upto) - emitted;
        emitted += slice;
        const Seconds t = params.duration * (k + 0.5) / calls;
        sink.on_collective({c.op, c.root, slice, t});
      }
    }
  }

  sink.on_end(params.duration);
}

}  // namespace netloc::workloads
