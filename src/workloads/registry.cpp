#include <map>

#include "netloc/common/error.hpp"
#include "netloc/workloads/workload.hpp"
#include "generators.hpp"

namespace netloc::workloads {

namespace {

const std::map<std::string, std::unique_ptr<WorkloadGenerator>>& registry() {
  static const auto instance = [] {
    std::map<std::string, std::unique_ptr<WorkloadGenerator>> map;
    auto add = [&map](std::unique_ptr<WorkloadGenerator> gen) {
      auto name = gen->name();
      map.emplace(std::move(name), std::move(gen));
    };
    add(detail::make_amg());
    add(detail::make_amr_miniapp());
    add(detail::make_bigfft());
    add(detail::make_cns());
    add(detail::make_boxlib_mg());
    add(detail::make_mocfe());
    add(detail::make_nekbone());
    add(detail::make_crystal_router());
    add(detail::make_cmc_2d());
    add(detail::make_lulesh());
    add(detail::make_fillboundary());
    add(detail::make_minife());
    add(detail::make_multigrid_c());
    add(detail::make_partisn());
    add(detail::make_snap());
    // Scale-tier families: resolvable like any app, but calibrated via
    // workloads::scale_entry() instead of the Table 1 catalog.
    add(detail::make_halo3d());
    add(detail::make_a2ablock());
    return map;
  }();
  return instance;
}

}  // namespace

void WorkloadGenerator::generate_into(const CatalogEntry& target,
                                      std::uint64_t seed,
                                      trace::EventSink& sink) const {
  trace::emit(generate(target, seed), sink);
}

const WorkloadGenerator& generator(const std::string& app) {
  const auto& map = registry();
  const auto it = map.find(app);
  if (it == map.end()) {
    throw ConfigError("no workload generator registered for '" + app + "'");
  }
  return *it->second;
}

std::vector<std::string> available_workloads() {
  std::vector<std::string> names;
  for (const auto& [name, gen] : registry()) names.push_back(name);
  return names;
}

trace::Trace generate(const std::string& app, int ranks, int variant,
                      std::uint64_t seed) {
  return generator(app).generate(catalog_entry(app, ranks, variant), seed);
}

void generate_into(const std::string& app, int ranks, trace::EventSink& sink,
                   int variant, std::uint64_t seed) {
  generator(app).generate_into(catalog_entry(app, ranks, variant), seed, sink);
}

}  // namespace netloc::workloads
