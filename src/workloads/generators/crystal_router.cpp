// Crystal Router: the staged all-to-all personalization kernel of
// Nek5000 (recursive doubling over a hypercube).
//
// Each rank exchanges with partners at power-of-two offsets
// (rank XOR 2^k); later stages forward accumulated payloads, so volume
// grows mildly with the stride (factor ~1.1 per stage reproduces the
// Table 3 rank distances, e.g. 334 at 1000 ranks). Partner counts stay
// logarithmic: peers 4/8/11 at 10/100/1000 ranks.
#include "netloc/workloads/pattern_builder.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class CrystalRouterGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "CrystalRouter"; }
  [[nodiscard]] std::string description() const override {
    return "recursive-doubling hypercube exchange (rank XOR 2^k)";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const int n = target.ranks;
    PatternBuilder builder(name(), n);

    double stage_weight = 1.0;
    for (int stride = 1; stride < n; stride *= 2) {
      for (Rank src = 0; src < n; ++src) {
        const Rank dst = src ^ stride;
        if (dst >= n) continue;  // Clipped stage for non-powers of two.
        builder.p2p(src, dst, stage_weight);
      }
      stage_weight *= 1.1;
    }
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 20;
    params.preferred_message_bytes = 32 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_crystal_router() {
  return std::make_unique<CrystalRouterGenerator>();
}

}  // namespace netloc::workloads::detail
