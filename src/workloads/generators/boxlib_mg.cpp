// Boxlib MultiGrid C: geometric multigrid solver on a regular 3-D
// decomposition.
//
// Unlike CNS, the MultiGrid miniapp keeps a locality-preserving box
// layout: Table 3 shows a constant peer set of 26 (a pure 27-point
// stencil) at every scale, with the V-cycle volumes folded onto the
// same neighbours. Face exchanges dominate strongly (selectivity 4.4).
#include "netloc/common/grid.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class BoxlibMgGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "BoxlibMG"; }
  [[nodiscard]] std::string description() const override {
    return "27-point halo exchange with V-cycle volumes on fixed "
           "neighbours";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const GridDims dims = balanced_dims(target.ranks, 3);
    PatternBuilder builder(name(), target.ranks);

    StencilWeights weights;
    weights.face_per_axis = {400.0, 120.0, 40.0};
    weights.edge = 5.0;
    weights.corner = 1.0;
    add_stencil(builder, dims, StencilScope::Full, weights);

    // Residual-norm allreduces: ~0.05% of volume per Table 1, but the
    // dominant packet source after flat translation.
    builder.collective(trace::CollectiveOp::Allreduce, 0, 1.0, 2500);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 30;
    params.preferred_message_bytes = 8 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_boxlib_mg() {
  return std::make_unique<BoxlibMgGenerator>();
}

}  // namespace netloc::workloads::detail
