// CESAR MOCFE: method-of-characteristics neutron transport.
//
// Volume is dominated by collectives (~94% allreduce/bcast over the
// angular flux iterations, Table 1). The small p2p share goes to a
// modest set of partners determined by the angular/energy
// decomposition rather than spatial adjacency, so partners are
// scattered across the whole rank range — Table 3 reports a rank
// distance of 772 at 1024 ranks with only 20 peers.
#include "netloc/common/prng.hpp"
#include "../generators.hpp"
#include "../random_partners.hpp"

namespace netloc::workloads::detail {

namespace {

class MocfeGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "MOCFE"; }
  [[nodiscard]] std::string description() const override {
    return "collective-dominated transport sweep with scattered angular "
           "p2p partners";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t seed) const override {
    return pattern(target, seed).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t seed,
                     trace::EventSink& sink) const override {
    pattern(target, seed).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target,
                                       std::uint64_t seed) const {
    const int n = target.ranks;
    PatternBuilder builder(name(), n);
    Xoshiro256 rng(seed ^ 0x30CF'E001ULL);

    RandomPartnerOptions partners;
    partners.partners_per_rank = n >= 256 ? 8 : 5;
    partners.base_weight = 100.0;
    partners.decay = 0.95;  // Near-flat: selectivity tracks the peer count.
    add_random_partners(builder, n, partners, rng);

    builder.collective(trace::CollectiveOp::Allreduce, 0, 3.0, 500);
    builder.collective(trace::CollectiveOp::Bcast, 0, 1.0, 200);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 20;
    params.preferred_message_bytes = 4096;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_mocfe() {
  return std::make_unique<MocfeGenerator>();
}

}  // namespace netloc::workloads::detail
