// Scale-tier generators (workloads/scale.hpp): HALO3D and A2ABLOCK,
// the two families the million-endpoint tier benchmarks with. Event
// counts stay linear in the rank count so a 1M-endpoint trace streams
// through the tiled accumulator without ever materializing O(n²).
#include "netloc/workloads/scale.hpp"

#include <algorithm>

#include "netloc/common/error.hpp"
#include "netloc/common/grid.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"

namespace netloc::workloads {

CatalogEntry scale_entry(const std::string& app, int ranks) {
  if (app != "HALO3D" && app != "A2ABLOCK") {
    throw ConfigError("scale_entry: unknown scale family '" + app +
                      "' (HALO3D, A2ABLOCK)");
  }
  if (ranks < 2) {
    throw ConfigError("scale_entry: ranks must be >= 2");
  }
  CatalogEntry entry;
  entry.app = app;
  entry.ranks = ranks;
  entry.time_s = 1.0;
  entry.volume_mb = static_cast<double>(ranks);  // 1 MB per rank.
  entry.p2p_percent = 100.0;
  return entry;
}

namespace detail {

namespace {

// Shared build parameters: with ~1 MB per rank spread over >= 26
// partners, per-pair volume sits well below the preferred message
// size, so each pair emits one message per build — the event count
// equals the pair count.
BuildParams scale_params(const CatalogEntry& target) {
  BuildParams params;
  params.p2p_bytes = target.p2p_bytes();
  params.collective_bytes = target.collective_bytes();
  params.duration = target.time_s;
  params.iterations = 4;
  params.preferred_message_bytes = 256 * 1024;
  return params;
}

class Halo3DGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "HALO3D"; }
  [[nodiscard]] std::string description() const override {
    return "scale-tier 27-point 3-D halo exchange (pure p2p)";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(scale_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(scale_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const GridDims dims = balanced_dims(target.ranks, 3);
    PatternBuilder builder(name(), target.ranks);
    // FillBoundary's anisotropic slab/pencil/point ratios, minus its
    // per-step reductions: a translated collective costs O(n) events
    // per call, which the scale tier cannot afford.
    StencilWeights weights;
    weights.face_per_axis = {420.0, 140.0, 45.0};
    weights.edge = 6.0;
    weights.corner = 1.0;
    add_stencil(builder, dims, StencilScope::Full, weights);
    return builder;
  }
};

class A2ABlockGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "A2ABLOCK"; }
  [[nodiscard]] std::string description() const override {
    return "scale-tier blocked all-to-all (uniform within blocks of " +
           std::to_string(kA2ABlockRanks) + " ranks)";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(scale_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(scale_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    PatternBuilder builder(name(), target.ranks);
    for (Rank base = 0; base < target.ranks; base += kA2ABlockRanks) {
      const Rank end =
          std::min<Rank>(base + kA2ABlockRanks, target.ranks);
      for (Rank src = base; src < end; ++src) {
        for (Rank dst = base; dst < end; ++dst) {
          if (src != dst) builder.p2p(src, dst, 1.0);
        }
      }
    }
    return builder;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_halo3d() {
  return std::make_unique<Halo3DGenerator>();
}

std::unique_ptr<WorkloadGenerator> make_a2ablock() {
  return std::make_unique<A2ABlockGenerator>();
}

}  // namespace detail

}  // namespace netloc::workloads
