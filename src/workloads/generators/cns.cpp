// Boxlib CNS (large): compressible Navier-Stokes on a block-structured
// AMR framework.
//
// BoxLib distributes boxes to ranks with a space-filling-curve
// knapsack, so a rank's ghost-cell partners are scattered across the
// whole machine — Table 3 shows peers = ranks-1 (metadata reaches
// everyone) while 90% of the volume still concentrates on a handful of
// box neighbours, and the rank distance is a large fraction of the
// rank count (661 of 1024). We model this as: per rank, a set of
// uniformly random heavy partners with geometrically decaying volumes,
// plus one-byte-scale metadata to every other rank.
#include "netloc/common/prng.hpp"
#include "../generators.hpp"
#include "../random_partners.hpp"

namespace netloc::workloads::detail {

namespace {

class CnsGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "CNS"; }
  [[nodiscard]] std::string description() const override {
    return "scattered box-neighbour exchange plus global metadata "
           "(BoxLib knapsack distribution)";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t seed) const override {
    return pattern(target, seed).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t seed,
                     trace::EventSink& sink) const override {
    pattern(target, seed).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target,
                                       std::uint64_t seed) const {
    const int n = target.ranks;
    PatternBuilder builder(name(), n);
    Xoshiro256 rng(seed ^ 0xC45'0001ULL);

    RandomPartnerOptions heavy;
    // More boxes per rank at 1024 ranks widen the 90% set (Table 3:
    // selectivity 20.8 at 1024 vs ~5.5 below). The counts are per
    // source; symmetrization roughly doubles a rank's partner set.
    heavy.partners_per_rank = n >= 1024 ? 13 : 4;
    heavy.base_weight = 1000.0;
    heavy.decay = n >= 1024 ? 0.88 : 0.62;
    add_random_partners(builder, n, heavy, rng);

    // Metadata / regrid chatter to every other rank: ~1.5% of volume.
    // With the heavy weights above summing to ~n * 2 * 1000/(1-decay),
    // a per-pair weight w_meta makes the metadata share
    // n*(n-1)*w_meta / total; solve for ~1.5%.
    const double heavy_total =
        2.0 * n * heavy.base_weight / (1.0 - heavy.decay);
    const double meta_total = heavy_total * 0.015;
    const double w_meta = meta_total / (static_cast<double>(n) * (n - 1));
    for (Rank s = 0; s < n; ++s) {
      for (Rank d = 0; d < n; ++d) {
        if (s != d) builder.p2p(s, d, w_meta);
      }
    }
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 25;
    params.preferred_message_bytes = 16 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_cns() {
  return std::make_unique<CnsGenerator>();
}

}  // namespace netloc::workloads::detail
