// PARTISN: deterministic Sn neutron transport with a 2-D KBA
// (Koch-Baker-Alcouffe) spatial decomposition.
//
// The wavefront sweep exchanges angular fluxes with the four axis
// neighbours of the 2-D process grid — hence Table 4's 100% 2-D rank
// locality (the only workload with a 2-D structure) — while problem
// setup broadcasts metadata rank-to-rank across the whole communicator
// (Table 3: peers = 167 of 168 with selectivity 3.4).
#include "netloc/common/grid.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class PartisnGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "PARTISN"; }
  [[nodiscard]] std::string description() const override {
    return "2-D KBA wavefront sweep plus global setup metadata";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const int n = target.ranks;
    const GridDims dims = balanced_dims(n, 2);
    PatternBuilder builder(name(), n);

    // Sweep fluxes: axis neighbours only. The y direction (fast axis)
    // carries slightly more volume than x (pencil shapes differ).
    StencilWeights sweep;
    sweep.face_per_axis = {500.0, 700.0};
    add_stencil(builder, dims, StencilScope::Faces, sweep);

    // Setup metadata: every ordered pair, ~2% of total volume. Sweep
    // total is ~ n * 2 * (500+700) interior-ish; a uniform per-pair
    // weight yields the target share.
    const double sweep_total = 2.0 * n * (500.0 + 700.0);
    const double w_meta = sweep_total * 0.02 / (static_cast<double>(n) * (n - 1));
    for (Rank s = 0; s < n; ++s) {
      for (Rank d = 0; d < n; ++d) {
        if (s != d) builder.p2p(s, d, w_meta);
      }
    }

    // Convergence allreduces: the 0.04% collective share of Table 1.
    builder.collective(trace::CollectiveOp::Allreduce, 0, 1.0, 150);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 40;
    params.preferred_message_bytes = 4 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_partisn() {
  return std::make_unique<PartisnGenerator>();
}

}  // namespace netloc::workloads::detail
