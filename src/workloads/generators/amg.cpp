// AMG: algebraic multigrid solver proxy (hypre BoomerAMG setup+solve).
//
// Communication geometry: a 27-point halo exchange on the 3-D domain
// decomposition dominates (fine grid), with geometrically shrinking
// halo exchanges at doubling strides for the coarser levels. The
// coarse levels give AMG its wide partner set (peers >> 26 in Table 3)
// while carrying little volume, so 3-D rank locality stays at 100%
// (Table 4) and selectivity stays face-dominated.
#include "netloc/common/grid.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class AmgGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "AMG"; }
  [[nodiscard]] std::string description() const override {
    return "3-D 27-point halo exchange with coarse multigrid levels at "
           "doubling strides";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const GridDims dims = balanced_dims(target.ranks, 3);
    PatternBuilder builder(name(), target.ranks);

    // Fine level: anisotropic faces (x-slabs are contiguous and
    // heaviest), then each coarse level repeats the stencil at twice
    // the stride with ~7% of the previous level's volume.
    double level_scale = 1.0;
    const int min_extent = dims.extent.back();
    for (int stride = 1; stride < min_extent; stride *= 2) {
      StencilWeights weights;
      weights.face = 250.0 * level_scale;
      weights.face_per_axis = {250.0 * level_scale, 100.0 * level_scale,
                               100.0 * level_scale};
      weights.edge = 5.0 * level_scale;
      weights.corner = 1.0 * level_scale;
      add_stencil(builder, dims, StencilScope::Full, weights, stride);
      level_scale *= 0.07;
    }
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 25;
    params.preferred_message_bytes = 2048;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_amg() {
  return std::make_unique<AmgGenerator>();
}

}  // namespace netloc::workloads::detail
