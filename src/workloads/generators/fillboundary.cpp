// FillBoundary: the BoxLib ghost-cell exchange benchmark in isolation
// (125 = 5^3 and 1000 = 10^3 ranks).
//
// A pure 27-point halo exchange — peers is exactly 26 for interior
// ranks at both scales (Table 3) and all volume is p2p.
#include "netloc/common/grid.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class FillBoundaryGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "FillBoundary"; }
  [[nodiscard]] std::string description() const override {
    return "isolated BoxLib ghost-cell (27-point halo) exchange";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const GridDims dims = balanced_dims(target.ranks, 3);
    PatternBuilder builder(name(), target.ranks);

    StencilWeights weights;
    weights.face_per_axis = {420.0, 140.0, 45.0};
    weights.edge = 6.0;
    weights.corner = 1.0;
    add_stencil(builder, dims, StencilScope::Full, weights);

    // Per-step timing/consistency reductions (zero volume, per Table 1,
    // but packet-dominant once flat-translated).
    builder.collective(trace::CollectiveOp::Allreduce, 0, 1.0, 900);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 25;
    params.preferred_message_bytes = 16 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_fillboundary() {
  return std::make_unique<FillBoundaryGenerator>();
}

}  // namespace netloc::workloads::detail
