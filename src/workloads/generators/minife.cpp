// MiniFE: implicit finite-element proxy (Mantevo).
//
// Halo exchange of shared FE nodes with all grid neighbours (face,
// edge, corner classes) plus dot-product allreduces from the CG solve
// (a trace fraction of a percent of volume, per Table 1).
#include "netloc/common/grid.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class MiniFeGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "MiniFE"; }
  [[nodiscard]] std::string description() const override {
    return "finite-element halo exchange with CG allreduces";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const GridDims dims = balanced_dims(target.ranks, 3);
    PatternBuilder builder(name(), target.ranks);

    StencilWeights weights;
    weights.face_per_axis = {500.0, 200.0, 80.0};
    weights.edge = 10.0;
    weights.corner = 1.0;
    add_stencil(builder, dims, StencilScope::Full, weights);

    builder.collective(trace::CollectiveOp::Allreduce, 0, 1.0, 900);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 40;
    params.preferred_message_bytes = 8 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_minife() {
  return std::make_unique<MiniFeGenerator>();
}

}  // namespace netloc::workloads::detail
