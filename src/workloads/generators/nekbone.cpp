// CESAR Nekbone: conjugate-gradient kernel of the Nek5000 spectral
// element solver.
//
// Per CG iteration: nearest-neighbour gather/scatter of shared element
// faces on the 3-D decomposition (27-point-class stencil), plus the
// dot-product allreduces. Table 1's collective share varies wildly
// across the three traced configurations (0% / 49% / 0.02%); the
// catalog drives that split directly.
#include "netloc/common/grid.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class NekboneGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "Nekbone"; }
  [[nodiscard]] std::string description() const override {
    return "spectral-element gather/scatter stencil with CG allreduces";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const GridDims dims = balanced_dims(target.ranks, 3);
    PatternBuilder builder(name(), target.ranks);

    StencilWeights weights;
    weights.face_per_axis = {320.0, 180.0, 100.0};
    weights.edge = 12.0;
    weights.corner = 1.0;
    add_stencil(builder, dims, StencilScope::Full, weights);

    // At the largest scale the element distribution wraps around the
    // grid, adding a second shell of light partners (Table 3: peers
    // rises to 36 at 1024 ranks).
    if (target.ranks >= 1024) {
      StencilWeights shell;
      shell.face = 6.0;
      add_stencil(builder, dims, StencilScope::Faces, shell, 2);
      StencilWeights diag;
      diag.face = 0.0;
      diag.edge = 2.0;
      add_stencil(builder, dims, StencilScope::FacesEdges, diag, 2);
    }

    // Two dot-product allreduces per CG iteration.
    builder.collective(trace::CollectiveOp::Allreduce, 0, 1.0, 2000);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 30;
    params.preferred_message_bytes = 16 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_nekbone() {
  return std::make_unique<NekboneGenerator>();
}

}  // namespace netloc::workloads::detail
