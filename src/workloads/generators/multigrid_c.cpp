// MultiGrid_C: standalone geometric multigrid benchmark (125 = 5^3 and
// 1000 = 10^3 ranks).
//
// Like Boxlib MultiGrid the peer set stays a constant 27-point
// neighbourhood across scales (Table 3: peers 22); V-cycle volumes are
// folded onto the same neighbours with face-dominated weights.
//
// Unlike the other stencil apps, the paper classifies MultiGrid_C with
// CNS as showing "no special correlation to a particular dimension"
// (Table 4: 17%/9% in 3-D, not 100%) and reports rank distances near
// half the rank count (59.7 of 125) — the box-to-rank assignment does
// not follow the row-major grid order. We reproduce that by pushing
// the stencil through a multiplicative rank permutation (r -> 3r mod
// n, a bijection for the catalog's 5^3/10^3 rank counts), which keeps
// the 26-peer structure but scatters it across the linear rank space.
#include "netloc/common/grid.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class MultiGridCGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "MultiGrid_C"; }
  [[nodiscard]] std::string description() const override {
    return "geometric multigrid halo exchange on fixed neighbours";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const GridDims dims = balanced_dims(target.ranks, 3);
    PatternBuilder builder(name(), target.ranks);

    StencilWeights weights;
    // Slowest-varying axis (largest scrambled rank offsets) carries the
    // least volume, keeping the 90% rank distance in the paper's band.
    weights.face_per_axis = {60.0, 150.0, 350.0};
    weights.edge = 8.0;
    weights.corner = 1.0;
    // Scrambled box-to-rank assignment (see header comment): cell c is
    // owned by rank 3c mod n, a bijection since gcd(3, n) == 1 for the
    // catalog's 5^3 and 10^3 rank counts.
    std::vector<Rank> rank_of_cell(static_cast<std::size_t>(target.ranks));
    for (std::size_t c = 0; c < rank_of_cell.size(); ++c) {
      rank_of_cell[c] = static_cast<Rank>((3 * c) % static_cast<std::size_t>(target.ranks));
    }
    add_stencil_mapped(builder, dims, StencilScope::Full, weights, rank_of_cell);

    // Residual-norm reductions per V-cycle (zero volume per Table 1).
    builder.collective(trace::CollectiveOp::Allreduce, 0, 1.0, 700);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 30;
    params.preferred_message_bytes = 4 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_multigrid_c() {
  return std::make_unique<MultiGridCGenerator>();
}

}  // namespace netloc::workloads::detail
