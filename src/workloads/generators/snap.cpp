// SNAP: the SN (discrete ordinates) Application Proxy for PARTISN.
//
// SNAP adds energy-group pipelining on top of the 2-D KBA sweep: flux
// moments travel to the spatial axis neighbours, while group-to-group
// and octant hand-offs connect ranks far apart in the linear order —
// Table 3 shows 48 peers with selectivity 9.8 and a rank distance of
// 139 of 168. Far partners carry distance-biased weights (sweep
// restarts cross the whole grid).
#include "netloc/common/grid.hpp"
#include "netloc/common/prng.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"
#include "../random_partners.hpp"

namespace netloc::workloads::detail {

namespace {

class SnapGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "SNAP"; }
  [[nodiscard]] std::string description() const override {
    return "2-D KBA sweep with far group/octant hand-off partners";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t seed) const override {
    return pattern(target, seed).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t seed,
                     trace::EventSink& sink) const override {
    pattern(target, seed).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target,
                                       std::uint64_t seed) const {
    const int n = target.ranks;
    const GridDims dims = balanced_dims(n, 2);
    PatternBuilder builder(name(), n);
    Xoshiro256 rng(seed ^ 0x5A4B'0001ULL);

    StencilWeights sweep;
    sweep.face_per_axis = {220.0, 300.0};
    add_stencil(builder, dims, StencilScope::Faces, sweep);

    RandomPartnerOptions handoff;
    handoff.partners_per_rank = 22;  // ~44 partners after symmetrization.
    handoff.base_weight = 60.0;
    handoff.decay = 0.80;  // 90% of volume within ~10 partners (Table 3: 9.8).
    handoff.distance_bias = 1.0;  // Octant restarts favour far ranks.
    add_random_partners(builder, n, handoff, rng);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 40;
    params.preferred_message_bytes = 4 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_snap() {
  return std::make_unique<SnapGenerator>();
}

}  // namespace netloc::workloads::detail
