// BigFFT (Medium): distributed 3-D FFT.
//
// The dominant communication is the transpose, an all-to-all over the
// global communicator; the Sandia trace contains no point-to-point
// traffic at all (Table 1: 100% collective; Table 3: peers "N/A").
#include "netloc/workloads/pattern_builder.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class BigFftGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "BigFFT"; }
  [[nodiscard]] std::string description() const override {
    return "all-to-all transpose phases of a distributed 3-D FFT";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    PatternBuilder builder(name(), target.ranks);
    // Two transposes per FFT step (forward, inverse); relative weights
    // are equal — the builder spreads volume over iterations anyway.
    builder.collective(trace::CollectiveOp::Alltoall, 0, 1.0, 60);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();  // 0 by catalog
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 16;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_bigfft() {
  return std::make_unique<BigFftGenerator>();
}

}  // namespace netloc::workloads::detail
