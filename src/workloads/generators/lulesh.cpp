// EXMATEX LULESH: Lagrangian shock hydrodynamics on a cubic 3-D
// decomposition (64 = 4^3, 512 = 8^3 ranks).
//
// The canonical 27-point halo exchange: 6 face neighbours exchange
// 2-D slabs, 12 edge neighbours exchange pencils, 8 corner neighbours
// exchange single elements, giving the strongly face-dominated
// selectivity of ~4.5 and 100% 3-D rank locality (Tables 3-4). The
// paper's Fig. 1 plots exactly this distribution for rank 0.
#include "netloc/common/grid.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class LuleshGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "LULESH"; }
  [[nodiscard]] std::string description() const override {
    return "27-point halo exchange on a cubic decomposition "
           "(faces >> edges >> corners)";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    const GridDims dims = balanced_dims(target.ranks, 3);
    PatternBuilder builder(name(), target.ranks);

    StencilWeights weights;
    // Slab sizes differ per direction in the actual data layout; the
    // anisotropy reproduces the 90% set of ~4.5 faces.
    weights.face_per_axis = {2000.0, 900.0, 250.0};
    weights.edge = 30.0;
    weights.corner = 1.0;
    add_stencil(builder, dims, StencilScope::Full, weights);

    // dt-constraint allreduce every timestep: ~0% of the volume but the
    // dominant packet source once flat-translated (n(n-1) messages per
    // call) — this is what pushes the paper's torus hop average of a
    // perfectly local app towards the uniform-traffic mean (5.80 at 512
    // ranks).
    builder.collective(trace::CollectiveOp::Allreduce, 0, 1.0, 1200);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 40;
    params.preferred_message_bytes = 8 * 1024;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_lulesh() {
  return std::make_unique<LuleshGenerator>();
}

}  // namespace netloc::workloads::detail
