// EXMATEX CMC_2D (Multinode): Monte-Carlo proxy whose traced
// communication is purely collective synchronization — tiny allreduces
// and broadcasts over a long execution (Table 1: ~16 MB over hundreds
// of seconds, 100% collective; Table 3: peers "N/A").
#include "netloc/workloads/pattern_builder.hpp"
#include "../generators.hpp"

namespace netloc::workloads::detail {

namespace {

class Cmc2dGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "CMC_2D"; }
  [[nodiscard]] std::string description() const override {
    return "sparse collective synchronization (small allreduces and "
           "bcasts)";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t /*seed*/) const override {
    return pattern(target).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t /*seed*/,
                     trace::EventSink& sink) const override {
    pattern(target).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target) const {
    PatternBuilder builder(name(), target.ranks);
    // Rooted patterns only (tally reductions and parameter
    // broadcasts): Table 3's CMC packet counts match ~4k calls of
    // (n-1)-message stars, not all-pairs operations.
    builder.collective(trace::CollectiveOp::Reduce, 0, 3.0, 2500);
    builder.collective(trace::CollectiveOp::Bcast, 0, 1.0, 1500);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();  // 0 by catalog
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 200;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_cmc_2d() {
  return std::make_unique<Cmc2dGenerator>();
}

}  // namespace netloc::workloads::detail
