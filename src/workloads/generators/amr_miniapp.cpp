// AMR_Miniapp: adaptive mesh refinement proxy (miniAMR-like).
//
// Base 27-point halo exchange on the 3-D decomposition, overlaid with
// refinement traffic: refined ranks exchange sizable volumes with a
// handful of remote owners of neighbouring fine patches (the irregular
// part that raises selectivity to ~8-13), and a few load-balancing hub
// ranks touch a large, lightly-weighted partner set (driving the peers
// column far above 26). A small allreduce budget models the regridding
// consensus (Table 1: ~0.5% collective volume).
#include <algorithm>

#include "netloc/common/grid.hpp"
#include "netloc/common/prng.hpp"
#include "netloc/workloads/stencil.hpp"
#include "../generators.hpp"
#include "../random_partners.hpp"

namespace netloc::workloads::detail {

namespace {

class AmrGenerator final : public WorkloadGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "AMR_Miniapp"; }
  [[nodiscard]] std::string description() const override {
    return "3-D halo exchange plus irregular refinement and "
           "load-balancing traffic";
  }

  [[nodiscard]] trace::Trace generate(const CatalogEntry& target,
                                      std::uint64_t seed) const override {
    return pattern(target, seed).build(build_params(target));
  }

  void generate_into(const CatalogEntry& target, std::uint64_t seed,
                     trace::EventSink& sink) const override {
    pattern(target, seed).build_into(build_params(target), sink);
  }

 private:
  [[nodiscard]] PatternBuilder pattern(const CatalogEntry& target,
                                       std::uint64_t seed) const {
    const int n = target.ranks;
    const GridDims dims = balanced_dims(n, 3);
    PatternBuilder builder(name(), n);
    Xoshiro256 rng(seed ^ 0xA318'0001ULL);

    StencilWeights base;
    base.face_per_axis = {220.0, 120.0, 120.0};
    base.edge = 8.0;
    base.corner = 1.0;
    add_stencil(builder, dims, StencilScope::Full, base);

    // Refinement patches: every third rank owns refined boxes whose
    // fine-level neighbours live on ~6 remote ranks within a third of
    // the machine, with face-scale volumes.
    for (Rank src = 0; src < n; src += 3) {
      const int extras = 6 + static_cast<int>(rng.next_below(5));  // 6..10
      for (int e = 0; e < extras; ++e) {
        const auto window = static_cast<std::int64_t>(std::max(2, n / 5));
        const auto offset = static_cast<std::int64_t>(rng.next_below(
                                static_cast<std::uint64_t>(2 * window))) -
                            window;
        auto dst = static_cast<Rank>(
            ((src + offset) % n + n) % n);
        if (dst == src) dst = (dst + 1) % n;
        const double weight = 90.0 + static_cast<double>(rng.next_below(80));
        builder.p2p(src, dst, weight);
        builder.p2p(dst, src, weight);
      }
    }

    // Load-balancing hubs: ~1% of ranks redistribute blocks across a
    // quarter of the machine with light messages.
    const int hubs = std::max(1, n / 100);
    for (int h = 0; h < hubs; ++h) {
      const auto hub = static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(n)));
      const int degree = std::max(8, n / 4);
      for (int e = 0; e < degree; ++e) {
        const auto dst = static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(n)));
        if (dst == hub) continue;
        builder.p2p(hub, dst, 0.4);
        builder.p2p(dst, hub, 0.4);
      }
    }

    builder.collective(trace::CollectiveOp::Allreduce, 0, 1.0, 500);
    return builder;
  }

  [[nodiscard]] static BuildParams build_params(const CatalogEntry& target) {
    BuildParams params;
    params.p2p_bytes = target.p2p_bytes();
    params.collective_bytes = target.collective_bytes();
    params.duration = target.time_s;
    params.iterations = 30;
    params.preferred_message_bytes = 4096;
    return params;
  }
};

}  // namespace

std::unique_ptr<WorkloadGenerator> make_amr_miniapp() {
  return std::make_unique<AmrGenerator>();
}

}  // namespace netloc::workloads::detail
