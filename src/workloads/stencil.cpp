#include "netloc/workloads/stencil.hpp"

#include "netloc/common/error.hpp"

namespace netloc::workloads {

void add_stencil(PatternBuilder& builder, const GridDims& dims,
                 StencilScope scope, const StencilWeights& weights, int stride) {
  add_stencil_mapped(builder, dims, scope, weights, {}, stride);
}

void add_stencil_mapped(PatternBuilder& builder, const GridDims& dims,
                        StencilScope scope, const StencilWeights& weights,
                        const std::vector<Rank>& rank_of_cell, int stride) {
  if (stride < 1) throw ConfigError("add_stencil: stride must be >= 1");
  if (dims.size() != builder.num_ranks()) {
    throw ConfigError("add_stencil: grid size does not match rank count");
  }
  if (!rank_of_cell.empty() &&
      rank_of_cell.size() != static_cast<std::size_t>(dims.size())) {
    throw ConfigError("add_stencil: rank_of_cell size must match grid size");
  }
  const int d = dims.dimensions();
  if (!weights.face_per_axis.empty() &&
      static_cast<int>(weights.face_per_axis.size()) != d) {
    throw ConfigError("add_stencil: face_per_axis size must match dimensionality");
  }
  const auto n = dims.size();

  // Enumerate all non-zero offsets in {-1, 0, +1}^d via counting.
  const int combos = [&] {
    int c = 1;
    for (int i = 0; i < d; ++i) c *= 3;
    return c;
  }();

  for (std::int64_t rank = 0; rank < n; ++rank) {
    const auto coords = to_coords(rank, dims);
    for (int combo = 0; combo < combos; ++combo) {
      int rest = combo;
      int nonzero = 0;
      int face_axis = -1;
      bool in_range = true;
      std::vector<std::int32_t> neighbour(coords);
      for (int i = 0; i < d; ++i) {
        const int offset = rest % 3 - 1;  // -1, 0, +1
        rest /= 3;
        if (offset != 0) {
          ++nonzero;
          face_axis = i;
          const auto moved = coords[static_cast<std::size_t>(i)] +
                             static_cast<std::int32_t>(offset) * stride;
          if (moved < 0 || moved >= dims.extent[static_cast<std::size_t>(i)]) {
            in_range = false;
            break;
          }
          neighbour[static_cast<std::size_t>(i)] = moved;
        }
      }
      if (!in_range || nonzero == 0) continue;
      if (scope == StencilScope::Faces && nonzero > 1) continue;
      if (scope == StencilScope::FacesEdges && nonzero > 2) continue;
      const double face_weight =
          weights.face_per_axis.empty()
              ? weights.face
              : weights.face_per_axis[static_cast<std::size_t>(face_axis)];
      const double weight = nonzero == 1   ? face_weight
                            : nonzero == 2 ? weights.edge
                                           : weights.corner;
      if (weight <= 0.0) continue;
      const auto src_cell = rank;
      const auto dst_cell = to_linear(neighbour, dims);
      const Rank src = rank_of_cell.empty()
                           ? static_cast<Rank>(src_cell)
                           : rank_of_cell[static_cast<std::size_t>(src_cell)];
      const Rank dst = rank_of_cell.empty()
                           ? static_cast<Rank>(dst_cell)
                           : rank_of_cell[static_cast<std::size_t>(dst_cell)];
      builder.p2p(src, dst, weight);
    }
  }
}

}  // namespace netloc::workloads
