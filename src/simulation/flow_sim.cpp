#include "netloc/simulation/flow_sim.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "netloc/common/error.hpp"

namespace netloc::simulation {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-12;

/// Internal per-flow state during the run.
struct ActiveFlow {
  std::size_t index;      ///< Into the submitted flow list.
  std::size_t route_idx;  ///< Into the shared route pool (0 = empty).
  double remaining;       ///< Bytes left.
  double rate = 0.0;      ///< Current max-min rate (bytes/s).
  bool shared = false;    ///< Ever rate-limited below full BW.
};

}  // namespace

FlowSimulator::FlowSimulator(const topology::Topology& topo,
                             const mapping::Mapping& mapping,
                             const FlowSimOptions& options,
                             std::shared_ptr<const topology::RoutePlan> plan)
    : topo_(topo), mapping_(mapping), options_(options), plan_(std::move(plan)) {
  if (options.bandwidth_bytes_per_s <= 0.0) {
    throw ConfigError("FlowSimulator: bandwidth must be > 0");
  }
  if (mapping.num_nodes() > topo.num_nodes()) {
    throw ConfigError("FlowSimulator: mapping targets more nodes than the topology");
  }
  if (plan_ == nullptr) {
    plan_ = topology::RoutePlan::build(topo_, 0);
  } else if (plan_->num_nodes() != topo.num_nodes()) {
    throw ConfigError("FlowSimulator: route plan does not match topology");
  }
  if (!plan_->single_path()) {
    // Max-min fair filling needs one deterministic link sequence per
    // flow; ECMP's fractional spreading has no single route to pool.
    throw ConfigError(
        "FlowSimulator: multipath (ECMP) route plans are not supported");
  }
}

void FlowSimulator::add_flow(Rank src, Rank dst, Bytes bytes, Seconds start) {
  if (ran_) {
    throw ConfigError("FlowSimulator: cannot add flows after run()");
  }
  if (src < 0 || src >= mapping_.num_ranks() || dst < 0 ||
      dst >= mapping_.num_ranks()) {
    throw ConfigError("FlowSimulator: rank out of range");
  }
  if (start < 0.0) throw ConfigError("FlowSimulator: negative start time");
  flows_.push_back(Flow{src, dst, bytes, start});
}

void FlowSimulator::add_matrix(const metrics::TrafficMatrix& matrix,
                               Seconds start) {
  const int n = matrix.num_ranks();
  if (n > mapping_.num_ranks()) {
    throw ConfigError("FlowSimulator: matrix larger than the mapping");
  }
  // Ascending (src, dst) order, matching the dense scan this replaces,
  // so flow submission order — and thus tie-breaking — is unchanged.
  matrix.for_each_nonzero([&](Rank s, Rank d, const metrics::TrafficCell& cell) {
    if (cell.bytes > 0) add_flow(s, d, cell.bytes, start);
  });
}

FlowSimReport FlowSimulator::run() {
  if (ran_) throw ConfigError("FlowSimulator: run() may be called once");
  ran_ = true;

  FlowSimReport report;
  report.flows.resize(flows_.size());

  // Arrival order (stable for equal times to stay deterministic).
  std::vector<std::size_t> arrival(flows_.size());
  for (std::size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
  std::stable_sort(arrival.begin(), arrival.end(), [&](std::size_t a, std::size_t b) {
    return flows_[a].start < flows_[b].start;
  });

  std::vector<ActiveFlow> active;
  std::unordered_map<LinkId, double> link_bytes;
  std::unordered_map<LinkId, double> link_busy_seconds;

  // Route pool: each distinct (source node, destination node) pair is
  // materialized exactly once and shared; entry 0 is the empty
  // intra-node route. Flows hold pool indices, not pointers — the
  // outer vector reallocates as new pairs appear.
  std::vector<std::vector<LinkId>> route_pool(1);
  std::unordered_map<std::uint64_t, std::size_t> route_of_pair;
  auto route_index = [&](NodeId a, NodeId b) -> std::size_t {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
        static_cast<std::uint32_t>(b);
    const auto [it, inserted] =
        route_of_pair.try_emplace(key, route_pool.size());
    if (inserted) {
      std::vector<LinkId> route;
      plan_->append_route(a, b, route);  // Reserves from hop_distance.
      route_pool.push_back(std::move(route));
    }
    return it->second;
  };

  // Max-min fair allocation over the active flows (progressive
  // filling). Rewrites every active flow's `rate`.
  auto allocate = [&]() {
    std::unordered_map<LinkId, double> capacity;
    std::unordered_map<LinkId, int> unfrozen_on_link;
    for (const auto& f : active) {
      for (const LinkId l : route_pool[f.route_idx]) {
        capacity.emplace(l, options_.bandwidth_bytes_per_s);
        ++unfrozen_on_link[l];
      }
    }
    std::vector<bool> frozen(active.size(), false);
    std::size_t remaining_flows = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (route_pool[active[i].route_idx].empty()) {
        active[i].rate = kInf;  // Intra-node: no network constraint.
        frozen[i] = true;
      } else {
        active[i].rate = 0.0;
        ++remaining_flows;
      }
    }
    double level = 0.0;  // Current fair-share water level.
    while (remaining_flows > 0) {
      // Bottleneck: the link whose residual capacity per unfrozen flow
      // runs out first.
      double increment = kInf;
      for (const auto& [link, users] : unfrozen_on_link) {
        if (users <= 0) continue;
        increment = std::min(increment, capacity.at(link) / users);
      }
      level += increment;
      // Freeze every flow that crosses a now-saturated link.
      for (auto& [link, cap] : capacity) {
        const int users = unfrozen_on_link[link];
        if (users > 0) cap -= increment * users;
      }
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (frozen[i]) continue;
        bool saturated = false;
        for (const LinkId l : route_pool[active[i].route_idx]) {
          if (capacity.at(l) <= options_.bandwidth_bytes_per_s * 1e-12) {
            saturated = true;
            break;
          }
        }
        if (saturated) {
          active[i].rate = level;
          if (level < options_.bandwidth_bytes_per_s * (1.0 - 1e-9)) {
            active[i].shared = true;
          }
          frozen[i] = true;
          --remaining_flows;
          for (const LinkId l : route_pool[active[i].route_idx]) {
            --unfrozen_on_link[l];
          }
        }
      }
    }
  };

  std::size_t next_arrival = 0;
  Seconds now = 0.0;
  if (!arrival.empty()) now = flows_[arrival[0]].start;

  auto admit_arrivals = [&](Seconds time) {
    bool admitted = false;
    while (next_arrival < arrival.size() &&
           flows_[arrival[next_arrival]].start <= time + kTimeEps) {
      const std::size_t index = arrival[next_arrival++];
      const Flow& flow = flows_[index];
      if (flow.bytes == 0) {
        report.flows[index] = {flow.start, 1.0};  // Instant completion.
        continue;
      }
      ActiveFlow af;
      af.index = index;
      af.route_idx = 0;
      af.remaining = static_cast<double>(flow.bytes);
      const NodeId a = mapping_.node_of(flow.src);
      const NodeId b = mapping_.node_of(flow.dst);
      if (a != b) {
        af.route_idx = route_index(a, b);
        for (const LinkId l : route_pool[af.route_idx]) {
          link_bytes[l] += static_cast<double>(flow.bytes);
        }
      }
      active.push_back(af);
      admitted = true;
    }
    return admitted;
  };

  admit_arrivals(now);
  allocate();

  while (!active.empty() || next_arrival < arrival.size()) {
    if (active.empty()) {
      // Idle gap: jump to the next arrival.
      now = flows_[arrival[next_arrival]].start;
      admit_arrivals(now);
      allocate();
      continue;
    }
    // Time until the earliest completion among active flows.
    double dt_complete = kInf;
    for (const auto& f : active) {
      if (f.rate > 0.0 && f.rate < kInf) {
        dt_complete = std::min(dt_complete, f.remaining / f.rate);
      } else if (f.rate == kInf || f.remaining <= 0.0) {
        dt_complete = 0.0;
      }
    }
    // Time until the next arrival.
    double dt_arrival = kInf;
    if (next_arrival < arrival.size()) {
      dt_arrival = flows_[arrival[next_arrival]].start - now;
    }
    const double dt = std::max(0.0, std::min(dt_complete, dt_arrival));

    // Advance: drain bytes, account link busy time.
    std::unordered_map<LinkId, bool> busy;
    for (auto& f : active) {
      if (f.rate == kInf) {
        f.remaining = 0.0;
      } else {
        f.remaining -= f.rate * dt;
      }
      for (const LinkId l : route_pool[f.route_idx]) busy[l] = true;
    }
    for (const auto& [link, is_busy] : busy) {
      if (is_busy) link_busy_seconds[link] += dt;
    }
    now += dt;

    // Retire completed flows.
    bool changed = false;
    for (std::size_t i = active.size(); i-- > 0;) {
      auto& f = active[i];
      if (f.remaining <= options_.bandwidth_bytes_per_s * kTimeEps) {
        const Flow& flow = flows_[f.index];
        const double ideal =
            flow.bytes == 0 || route_pool[f.route_idx].empty()
                ? 0.0
                : static_cast<double>(flow.bytes) / options_.bandwidth_bytes_per_s;
        FlowResult result;
        result.finish = now;
        result.slowdown =
            ideal > 0.0 ? std::max(1.0, (now - flow.start) / ideal) : 1.0;
        if (f.shared && result.slowdown < 1.0 + 1e-9) {
          result.slowdown = 1.0 + 1e-9;  // Shared but drained in slack.
        }
        report.flows[f.index] = result;
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
      }
    }
    if (admit_arrivals(now)) changed = true;
    if (changed) allocate();
  }

  // ---- Aggregates -------------------------------------------------------
  report.makespan = now;
  double slowdown_sum = 0.0;
  int network_flows = 0, congested = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const auto& r = report.flows[i];
    if (flows_[i].bytes == 0) continue;
    ++network_flows;
    slowdown_sum += r.slowdown;
    report.max_slowdown = std::max(report.max_slowdown, r.slowdown);
    if (r.slowdown > 1.0 + 1e-10) ++congested;
  }
  if (network_flows > 0) {
    report.mean_slowdown = slowdown_sum / network_flows;
    report.congested_flow_share = static_cast<double>(congested) / network_flows;
  }
  report.used_links = static_cast<int>(link_bytes.size());
  if (report.makespan > 0.0) {
    double busy_sum = 0.0;
    for (const auto& [link, bytes] : link_bytes) {
      report.max_link_utilization_percent = std::max(
          report.max_link_utilization_percent,
          100.0 * bytes / (options_.bandwidth_bytes_per_s * report.makespan));
      busy_sum += link_busy_seconds[link] / report.makespan;
    }
    if (report.used_links > 0) {
      report.mean_link_busy_fraction = busy_sum / report.used_links;
    }
  }
  return report;
}

}  // namespace netloc::simulation
